/**
 * @file
 * Pivot theory tests (Lemma A2.1): analytic pivots versus a
 * brute-force census of switches lying on routing paths, pivot
 * counts and spacing, and participating links.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/modmath.hpp"
#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using core::oracleAllPaths;
using core::participatingLinks;
using core::PivotInfo;
using topo::IadmTopology;

/** Brute-force pivots: switches appearing on any routing path. */
std::vector<std::set<Label>>
brutePivots(const IadmTopology &topo, Label s, Label d)
{
    std::vector<std::set<Label>> result(topo.stages() + 1);
    for (const core::Path &p : oracleAllPaths(topo, s, d))
        for (unsigned i = 0; i <= topo.stages(); ++i)
            result[i].insert(p.switchAt(i));
    return result;
}

class PivotP : public ::testing::TestWithParam<Label>
{
};

TEST_P(PivotP, MatchesBruteForce)
{
    const Label n_size = GetParam();
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            const auto brute = brutePivots(topo, s, d);
            for (unsigned i = 0; i <= topo.stages(); ++i) {
                std::set<Label> analytic(info.at(i).begin(),
                                         info.at(i).end());
                EXPECT_EQ(analytic, brute[i])
                    << "s=" << s << " d=" << d << " stage=" << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PivotP, ::testing::Values(2, 4, 8, 16));

TEST(Pivot, CountsPerLemmaA21)
{
    // Exactly one pivot at stages 0..k-hat, exactly two at stages
    // k-hat+1..n-1, one at stage n.
    const Label n_size = 64;
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            const unsigned khat = info.lowestNonstraightStage();
            for (unsigned i = 0; i < 6; ++i) {
                if (i <= khat)
                    EXPECT_EQ(info.at(i).size(), 1u);
                else
                    EXPECT_EQ(info.at(i).size(), 2u);
            }
            EXPECT_EQ(info.at(6).size(), 1u);
            EXPECT_EQ(info.at(6)[0], d);
        }
    }
}

TEST(Pivot, SpacingIs2ToTheI)
{
    // Lemma A2.1: the two pivots of stage k'' differ by 2^{k''}.
    const Label n_size = 64;
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            for (unsigned i = 0; i < 6; ++i) {
                const auto &p = info.at(i);
                if (p.size() == 2) {
                    const Label diff = modSub(p[1], p[0], n_size);
                    const Label stride = Label{1} << i;
                    EXPECT_TRUE(diff == stride ||
                                diff == n_size - stride)
                        << "s=" << s << " d=" << d << " i=" << i;
                }
            }
        }
    }
}

TEST(Pivot, KHatIsLowestSetBitOfDistance)
{
    const Label n_size = 32;
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            const Label dist = distance(s, d, n_size);
            unsigned expect = 5; // n when s == d
            for (unsigned i = 0; i < 5; ++i) {
                if (bit(dist, i)) {
                    expect = i;
                    break;
                }
            }
            EXPECT_EQ(info.lowestNonstraightStage(), expect);
        }
    }
}

TEST(Pivot, StageZeroPivotIsSource)
{
    const Label n_size = 16;
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            ASSERT_EQ(info.at(0).size(), 1u);
            EXPECT_EQ(info.at(0)[0], s);
        }
    }
}

TEST(Pivot, PivotLabelsMatchLemmaFormula)
{
    // The pivot at stage k' <= k-hat is d_{0/k'-1} s_{k'/n-1}.
    const Label n_size = 32;
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const PivotInfo info(s, d, n_size);
            for (unsigned i = 0; i <= 5; ++i) {
                const Label expect = static_cast<Label>(
                    (d & lowMask(i)) | (s & ~lowMask(i) & 31));
                EXPECT_TRUE(info.isPivot(i, expect))
                    << "s=" << s << " d=" << d << " i=" << i;
            }
        }
    }
}

TEST(ParticipatingLinks, ExactlyTheLinksOnPaths)
{
    const Label n_size = 16;
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            std::set<std::uint64_t> on_paths;
            for (const core::Path &p : oracleAllPaths(topo, s, d))
                for (const topo::Link &l : p.links())
                    on_paths.insert(l.key());
            std::set<std::uint64_t> analytic;
            for (const topo::Link &l :
                 participatingLinks(topo, s, d))
                analytic.insert(l.key());
            EXPECT_EQ(analytic, on_paths)
                << "s=" << s << " d=" << d;
        }
    }
}

TEST(CutPair, DisconnectsEveryPair)
{
    // Lemma A2.2 constructively: blocking one stage's participating
    // links closes every pivot there.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const auto fs = core::cutPair(topo, s, d);
            EXPECT_FALSE(core::oracleReachable(topo, fs, s, d))
                << "s=" << s << " d=" << d;
            // The cut is small: at most 4 links (two pivots with at
            // most two participating outputs each).
            EXPECT_LE(fs.count(), 4u);
            // Other pairs from the same source usually survive;
            // at minimum the network stays globally functional for
            // a different source.
            EXPECT_TRUE(core::oracleReachable(
                topo, fs, (s + 1) % n_size,
                (d + 3) % n_size) ||
                core::oracleReachable(topo, fs, (s + 2) % n_size,
                                      (d + 5) % n_size));
        }
    }
}

TEST(ParticipatingLinks, SwitchOutputsAreStraightXorNonstraightPair)
{
    // Section 3: the participating output links of a switch are its
    // straight link or both nonstraight links, never all three.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            // Group participating links by (stage, from).
            std::map<std::pair<unsigned, Label>,
                     std::set<topo::LinkKind>>
                by_switch;
            for (const topo::Link &l :
                 participatingLinks(topo, s, d))
                by_switch[{l.stage, l.from}].insert(l.kind);
            for (const auto &[sw, kinds] : by_switch) {
                const bool has_straight =
                    kinds.count(topo::LinkKind::Straight) != 0;
                const bool has_plus =
                    kinds.count(topo::LinkKind::Plus) != 0;
                const bool has_minus =
                    kinds.count(topo::LinkKind::Minus) != 0;
                EXPECT_FALSE(has_straight && (has_plus || has_minus))
                    << "stage " << sw.first << " switch "
                    << sw.second;
                EXPECT_EQ(has_plus, has_minus);
            }
        }
    }
}

} // namespace
} // namespace iadm
