/**
 * @file
 * Large-N randomized property battery: cheap invariants exercised
 * at sizes (up to N = 4096) where exhaustive checking is
 * impossible, ensuring nothing in the theory silently depends on
 * small networks.
 */

#include <gtest/gtest.h>

#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/distributed.hpp"
#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using topo::IadmTopology;

class LargeNP : public ::testing::TestWithParam<Label>
{
};

TEST_P(LargeNP, RandomTagsAlwaysReachTheirDestination)
{
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    Rng rng(n_size);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const auto p =
            core::tsdtTrace(s, core::TsdtTag(n, d, st), n_size);
        EXPECT_EQ(p.destination(), d);
    }
}

TEST_P(LargeNP, EveryTracedSwitchIsAPivot)
{
    // By definition a pivot is a switch on some routing path; every
    // traced path must therefore visit only pivots — which checks
    // the analytic pivot formula at scale.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    Rng rng(n_size + 1);
    for (int trial = 0; trial < 100; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const auto p =
            core::tsdtTrace(s, core::TsdtTag(n, d, st), n_size);
        const core::PivotInfo info(s, d, n_size);
        for (unsigned i = 0; i <= n; ++i)
            EXPECT_TRUE(info.isPivot(i, p.switchAt(i)))
                << "N=" << n_size << " s=" << s << " d=" << d
                << " stage " << i;
    }
}

TEST_P(LargeNP, TagForPathRoundTrips)
{
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    Rng rng(n_size + 2);
    for (int trial = 0; trial < 100; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const core::TsdtTag tag(
            n, static_cast<Label>(rng.uniform(n_size)),
            static_cast<Label>(rng.uniform(n_size)));
        const auto p = core::tsdtTrace(s, tag, n_size);
        EXPECT_EQ(core::tsdtTrace(s, core::tagForPath(p, n), n_size),
                  p);
    }
}

TEST_P(LargeNP, RerouteMatchesOracleSampled)
{
    const Label n_size = GetParam();
    IadmTopology topo(n_size);
    Rng rng(n_size + 3);
    for (int trial = 0; trial < 20; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, n_size / 2, rng);
        for (int k = 0; k < 5; ++k) {
            const auto s =
                static_cast<Label>(rng.uniform(n_size));
            const auto d =
                static_cast<Label>(rng.uniform(n_size));
            const auto res = core::universalRoute(topo, fs, s, d);
            EXPECT_EQ(res.ok,
                      core::oracleReachable(topo, fs, s, d));
            if (res.ok) {
                EXPECT_TRUE(res.path.isBlockageFree(fs));
            }
        }
    }
}

TEST_P(LargeNP, DynamicWalkInvariants)
{
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    Rng rng(n_size + 4);
    for (int trial = 0; trial < 50; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, rng.uniform(n_size), rng);
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto res = core::distributedRoute(topo, fs, s, d);
        if (res.delivered) {
            EXPECT_EQ(res.forwardHops, n + res.backtrackHops);
            EXPECT_TRUE(res.path.isBlockageFree(fs));
        }
    }
}

TEST_P(LargeNP, RepresentationCountSymmetries)
{
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    // count(D) == count(N - D) (sign symmetry); count(0) == 1;
    // count(1) == n + 1.
    EXPECT_EQ(baselines::countRepresentations(n, 0), 1u);
    EXPECT_EQ(baselines::countRepresentations(n, 1), n + 1);
    Rng rng(n_size + 5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = static_cast<Label>(
            1 + rng.uniform(n_size - 1));
        EXPECT_EQ(baselines::countRepresentations(n, d),
                  baselines::countRepresentations(
                      n, static_cast<Label>(n_size - d)))
            << "N=" << n_size << " D=" << d;
    }
}

TEST_P(LargeNP, PathCountsMatchRepresentationCounts)
{
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    Rng rng(n_size + 6);
    for (int trial = 0; trial < 25; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        EXPECT_EQ(core::oracleCountPaths(topo, s, d),
                  baselines::countRepresentations(
                      n, distance(s, d, n_size)));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LargeNP,
                         ::testing::Values(256, 1024, 4096));

TEST(Property, Corollary42RangeInvariant)
{
    // For any traced path and any blockage stage, the Corollary 4.2
    // rewrite touches exactly the state bits between the last
    // nonstraight stage and the blockage.
    const Label n_size = 512;
    const unsigned n = 9;
    Rng rng(99);
    for (int trial = 0; trial < 300; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const core::TsdtTag tag(
            n, static_cast<Label>(rng.uniform(n_size)),
            static_cast<Label>(rng.uniform(n_size)));
        const auto p = core::tsdtTrace(s, tag, n_size);
        const auto i =
            static_cast<unsigned>(1 + rng.uniform(n - 1));
        const int r = p.lastNonstraightBefore(i);
        const auto re = core::rerouteBacktrack(tag, p, i);
        if (r < 0) {
            EXPECT_FALSE(re.has_value());
            continue;
        }
        ASSERT_TRUE(re.has_value());
        // Bits outside [r, i) unchanged.
        for (unsigned l = 0; l < n; ++l) {
            if (l < static_cast<unsigned>(r) || l >= i) {
                EXPECT_EQ(re->stateBit(l), tag.stateBit(l));
            }
        }
        // Destination bits never change.
        EXPECT_EQ(re->destination(), tag.destination());
    }
}

TEST(Property, SsdtFlipsBoundedByStages)
{
    const Label n_size = 1024;
    IadmTopology topo(n_size);
    Rng rng(100);
    const auto fs = fault::randomNonstraightFaults(topo, 500, rng);
    core::SsdtRouter router(topo);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto res = router.route(s, d, fs);
        EXPECT_LE(res.stateFlips, topo.stages());
    }
}

} // namespace
} // namespace iadm
