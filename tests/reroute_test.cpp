/**
 * @file
 * Algorithm REROUTE tests — the paper's central claim (Section 5):
 * for ANY combination of multiple link blockages, REROUTE finds a
 * blockage-free path when one exists and reports FAIL when none
 * does.  Verified exhaustively against the BFS oracle over every
 * subset of participating links for small networks, and over
 * randomized multi-blockage sets for larger ones.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "core/reroute.hpp"
#include "fault/injection.hpp"
#include "common/rng.hpp"

namespace iadm {
namespace {

using core::oracleReachable;
using core::RerouteResult;
using core::universalRoute;
using fault::FaultSet;
using topo::IadmTopology;

/**
 * Check REROUTE against the oracle for one (s, d, faults) instance.
 */
void
checkAgainstOracle(const IadmTopology &topo, const FaultSet &faults,
                   Label s, Label d)
{
    const bool reachable = oracleReachable(topo, faults, s, d);
    const RerouteResult res = universalRoute(topo, faults, s, d);
    ASSERT_EQ(res.ok, reachable)
        << "s=" << s << " d=" << d << " N=" << topo.size()
        << " faults=" << faults.str()
        << (reachable ? " (path exists but REROUTE failed)"
                      : " (REROUTE claimed a path where none exists)");
    if (res.ok) {
        res.path.validate(topo);
        EXPECT_EQ(res.path.source(), s);
        EXPECT_EQ(res.path.destination(), d);
        EXPECT_TRUE(res.path.isBlockageFree(faults))
            << "s=" << s << " d=" << d
            << " path=" << res.path.str()
            << " faults=" << faults.str();
    }
}

TEST(Reroute, NoFaultsReturnsCanonicalPath)
{
    IadmTopology topo(16);
    FaultSet none;
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto res = universalRoute(topo, none, s, d);
            ASSERT_TRUE(res.ok);
            EXPECT_EQ(res.iterations, 1u);
            EXPECT_EQ(res.tag.stateBits(), 0u);
        }
    }
}

class RerouteExhaustiveP
    : public ::testing::TestWithParam<Label>
{
};

TEST_P(RerouteExhaustiveP, EverySubsetOfParticipatingLinks)
{
    // Exhaustive: for every pair, block every subset of the pair's
    // participating links (links off every routing path are
    // irrelevant by definition) and compare with the oracle.
    const Label n_size = GetParam();
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const auto part = core::participatingLinks(topo, s, d);
            ASSERT_LE(part.size(), 20u);
            const std::uint64_t subsets = std::uint64_t{1}
                                          << part.size();
            for (std::uint64_t mask = 0; mask < subsets; ++mask) {
                FaultSet fs;
                for (std::size_t b = 0; b < part.size(); ++b)
                    if ((mask >> b) & 1u)
                        fs.blockLink(part[b]);
                checkAgainstOracle(topo, fs, s, d);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RerouteExhaustiveP,
                         ::testing::Values(2, 4, 8));

TEST(Reroute, NonParticipatingBlockagesAreIgnored)
{
    // Blocking links off every routing path must not disturb
    // REROUTE.
    IadmTopology topo(16);
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        std::set<std::uint64_t> part;
        for (const topo::Link &l :
             core::participatingLinks(topo, s, d))
            part.insert(l.key());
        FaultSet fs;
        auto all = topo.allLinks();
        for (int k = 0; k < 30; ++k) {
            const auto &l = all[rng.uniform(all.size())];
            if (!part.count(l.key()))
                fs.blockLink(l);
        }
        const auto res = universalRoute(topo, fs, s, d);
        ASSERT_TRUE(res.ok);
        EXPECT_TRUE(res.path.isBlockageFree(fs));
    }
}

class RerouteRandomP
    : public ::testing::TestWithParam<std::pair<Label, std::size_t>>
{
};

TEST_P(RerouteRandomP, MatchesOracleUnderRandomBlockages)
{
    const auto [n_size, fault_count] = GetParam();
    IadmTopology topo(n_size);
    Rng rng(1000 + n_size * 7 + fault_count);
    for (int trial = 0; trial < 300; ++trial) {
        const auto fs =
            fault::randomLinkFaults(topo, fault_count, rng);
        for (int pair = 0; pair < 8; ++pair) {
            const auto s = static_cast<Label>(rng.uniform(n_size));
            const auto d = static_cast<Label>(rng.uniform(n_size));
            checkAgainstOracle(topo, fs, s, d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RerouteRandomP,
    ::testing::Values(std::pair<Label, std::size_t>{8, 3},
                      std::pair<Label, std::size_t>{8, 8},
                      std::pair<Label, std::size_t>{16, 6},
                      std::pair<Label, std::size_t>{16, 20},
                      std::pair<Label, std::size_t>{32, 12},
                      std::pair<Label, std::size_t>{32, 48},
                      std::pair<Label, std::size_t>{64, 40},
                      std::pair<Label, std::size_t>{128, 100}));

TEST(Reroute, SwitchBlockages)
{
    // Switch blockages transform into link blockages; REROUTE must
    // agree with the oracle on them too.
    IadmTopology topo(16);
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        const auto fs = fault::randomSwitchFaults(
            topo, 1 + rng.uniform(4), rng);
        for (int pair = 0; pair < 8; ++pair) {
            const auto s = static_cast<Label>(rng.uniform(16));
            const auto d = static_cast<Label>(rng.uniform(16));
            checkAgainstOracle(topo, fs, s, d);
        }
    }
}

TEST(Reroute, DoubleNonstraightHeavy)
{
    // Stress the Theorem 3.4 / step-4b machinery specifically.
    IadmTopology topo(32);
    Rng rng(78);
    for (int trial = 0; trial < 200; ++trial) {
        const auto fs = fault::randomDoubleNonstraightFaults(
            topo, 1 + rng.uniform(8), rng);
        for (int pair = 0; pair < 8; ++pair) {
            const auto s = static_cast<Label>(rng.uniform(32));
            const auto d = static_cast<Label>(rng.uniform(32));
            checkAgainstOracle(topo, fs, s, d);
        }
    }
}

TEST(Reroute, BernoulliBlockageSweep)
{
    // Mixed random blockage densities from sparse to dense.
    IadmTopology topo(16);
    Rng rng(79);
    for (double p : {0.02, 0.08, 0.2, 0.5}) {
        for (int trial = 0; trial < 60; ++trial) {
            const auto fs = fault::bernoulliLinkFaults(topo, p, rng);
            for (int pair = 0; pair < 6; ++pair) {
                const auto s =
                    static_cast<Label>(rng.uniform(16));
                const auto d =
                    static_cast<Label>(rng.uniform(16));
                checkAgainstOracle(topo, fs, s, d);
            }
        }
    }
}

TEST(Reroute, ReportsCorollary41AndBacktrackUsage)
{
    IadmTopology topo(16);
    // A single nonstraight blockage on the canonical path: exactly
    // one Corollary 4.1 application, no backtracking.
    FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1)); // canonical 1 -> 0 hop
    auto res = universalRoute(topo, fs, 1, 0);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.corollary41, 1u);
    EXPECT_EQ(res.backtracks, 0u);

    // A straight blockage forces BACKTRACK.
    fs.clear();
    fs.blockLink(topo.straightLink(2, 0));
    res = universalRoute(topo, fs, 1, 0);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.backtracks, 1u);
}

TEST(Reroute, ProgressIsMonotone)
{
    // The outer loop runs at most ~n+1 times (each iteration clears
    // a strictly higher stage).
    IadmTopology topo(64);
    Rng rng(80);
    for (int trial = 0; trial < 300; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, 5 + rng.uniform(40), rng);
        const auto s = static_cast<Label>(rng.uniform(64));
        const auto d = static_cast<Label>(rng.uniform(64));
        const auto res = universalRoute(topo, fs, s, d);
        EXPECT_LE(res.iterations, topo.stages() + 1);
    }
}

TEST(Reroute, ExplainNarratesRepairsAndAgreesWithReroute)
{
    IadmTopology topo(16);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1));   // Cor 4.1 case
    fs.blockLink(topo.straightLink(2, 0)); // BACKTRACK case
    const auto text = core::explainReroute(topo, fs, 1, 0);
    EXPECT_NE(text.find("corollary 4.1"), std::string::npos);
    EXPECT_NE(text.find("BACKTRACK"), std::string::npos);
    EXPECT_NE(text.find("blockage-free"), std::string::npos);

    // FAIL narration.
    fault::FaultSet cut;
    cut.blockLink(topo.straightLink(1, 5));
    const auto fail_text = core::explainReroute(topo, cut, 5, 5);
    EXPECT_NE(fail_text.find("FAIL"), std::string::npos);

    // Narration on random instances never diverges (the function
    // asserts agreement internally).
    Rng rng(88);
    for (int trial = 0; trial < 100; ++trial) {
        const auto faults =
            fault::randomLinkFaults(topo, rng.uniform(20), rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        EXPECT_FALSE(
            core::explainReroute(topo, faults, s, d).empty());
    }
}

TEST(Reroute, AdversarialCutsAlwaysFail)
{
    // cutPair disconnects the pair by construction; REROUTE must
    // report FAIL even with extra noise faults layered on top.
    IadmTopology topo(32);
    Rng rng(81);
    for (int trial = 0; trial < 150; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(32));
        const auto d = static_cast<Label>(rng.uniform(32));
        auto fs = core::cutPair(topo, s, d);
        fs.merge(fault::randomLinkFaults(topo, rng.uniform(10), rng));
        EXPECT_FALSE(universalRoute(topo, fs, s, d).ok);
        EXPECT_FALSE(oracleReachable(topo, fs, s, d));
    }
}

TEST(Reroute, SourceEqualsDestination)
{
    IadmTopology topo(8);
    FaultSet fs;
    EXPECT_TRUE(universalRoute(topo, fs, 3, 3).ok);
    fs.blockLink(topo.straightLink(1, 3));
    const auto res = universalRoute(topo, fs, 3, 3);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(oracleReachable(topo, fs, 3, 3));
}

} // namespace
} // namespace iadm
