/**
 * @file
 * Fault-epoch route cache tests: probe/fill/invalidation mechanics,
 * FAIL-bit memoization, eviction behaviour under adversarial load,
 * and — the property everything rests on — that cache warm-up order
 * can never change what the simulator delivers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/reroute.hpp"
#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"
#include "fault/injection.hpp"
#include "sim/network_sim.hpp"
#include "sim/route_cache.hpp"
#include "sim/traffic.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using namespace sim;
using fault::FaultSet;
using topo::IadmTopology;

TEST(RouteCache, MissThenHitThenEpochInvalidation)
{
    const IadmTopology topo(16);
    FaultSet faults;
    faults.blockLink(topo.plusLink(1, 3));
    RouteCache cache(16);

    const auto [e1, hit1] = cache.resolveUniversal(topo, faults, 2, 9);
    EXPECT_FALSE(hit1);
    ASSERT_TRUE(e1->ok());

    const auto [e2, hit2] = cache.resolveUniversal(topo, faults, 2, 9);
    EXPECT_TRUE(hit2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(e1->tagFor(topo.stages()), e2->tagFor(topo.stages()));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // Any fault mutation moves version(): every entry is stale at
    // once, with no table walk.
    faults.blockLink(topo.minusLink(2, 5));
    const auto [e3, hit3] = cache.resolveUniversal(topo, faults, 2, 9);
    EXPECT_FALSE(hit3);
    EXPECT_EQ(cache.stats().misses, 2u);

    // Unblocking is a mutation too — even though the fault set is
    // back to its earlier contents, the version keeps moving, so
    // correctness never depends on comparing blockage maps.
    faults.unblockLink(topo.minusLink(2, 5));
    const auto [e4, hit4] = cache.resolveUniversal(topo, faults, 2, 9);
    EXPECT_FALSE(hit4);
    EXPECT_EQ(e4->tagFor(topo.stages()),
              core::universalRoute(topo, faults, 2, 9).tag);
}

TEST(RouteCache, CachedEntriesMatchFreshRerouteEverywhere)
{
    const IadmTopology topo(16);
    FaultSet faults;
    faults.blockLink(topo.straightLink(1, 6));
    faults.blockLink(topo.plusLink(2, 11));
    faults.blockLink(topo.minusLink(0, 4));
    RouteCache cache(16);

    for (int round = 0; round < 2; ++round) {
        for (Label s = 0; s < 16; ++s) {
            for (Label d = 0; d < 16; ++d) {
                const auto [e, hit] =
                    cache.resolveUniversal(topo, faults, s, d);
                EXPECT_EQ(hit, round == 1);
                const auto fresh =
                    core::universalRoute(topo, faults, s, d);
                ASSERT_EQ(e->ok(), fresh.ok)
                    << s << "->" << d << " round " << round;
                if (!fresh.ok)
                    continue;
                EXPECT_EQ(e->tagFor(topo.stages()), fresh.tag);
                EXPECT_EQ(e->reroutes,
                          fresh.corollary41 +
                              fresh.backtrackStats.bitsChanged);
                // The entry stores no explicit path any more: the
                // 16-bit delta word must decode to the REROUTE path
                // in packet-embedded form.
                std::uint16_t sw[RouteCache::kMaxPathSw];
                core::decodeDelta(s, d, e->delta, topo.stages(), sw);
                for (unsigned i = 0; i <= topo.stages(); ++i)
                    EXPECT_EQ(sw[i], fresh.path.switchAt(i));
            }
        }
    }
}

/**
 * decode(encode(path)) == path for one (topo, faults) instance:
 * REROUTE's compact result must reconstruct the exact path of the
 * full result via decodeDelta, agree with the reachability oracle on
 * ok, and land on the destination (Theorem 3.1).
 */
void
expectDeltaRoundTrip(const IadmTopology &topo,
                     const FaultSet &faults, Label s, Label d)
{
    const auto compact =
        core::universalRouteCompact(topo, faults, s, d);
    const auto fresh = core::universalRoute(topo, faults, s, d);
    ASSERT_EQ(compact.ok, fresh.ok) << s << "->" << d;
    ASSERT_EQ(compact.ok, core::oracleReachable(topo, faults, s, d))
        << s << "->" << d;
    if (!compact.ok)
        return;
    EXPECT_EQ(compact.tag, fresh.tag) << s << "->" << d;
    std::uint16_t sw[RouteCache::kMaxPathSw];
    const unsigned len = core::decodeDelta(
        s, d, compact.tag.stateBits(), topo.stages(), sw);
    ASSERT_EQ(len, topo.stages() + 1);
    EXPECT_EQ(sw[0], s);
    EXPECT_EQ(sw[topo.stages()], d) << "Theorem 3.1 violated";
    for (unsigned i = 0; i <= topo.stages(); ++i)
        ASSERT_EQ(sw[i], fresh.path.switchAt(i))
            << s << "->" << d << " stage " << i;
    // And the decode agrees with the state model's own trace of the
    // same tag, not just with REROUTE's bookkeeping.
    const core::Path trace =
        core::tsdtTrace(s, compact.tag, topo.size());
    for (unsigned i = 0; i <= topo.stages(); ++i)
        ASSERT_EQ(sw[i], trace.switchAt(i))
            << s << "->" << d << " stage " << i;
}

TEST(RouteCache, DeltaRoundTripExhaustiveN64)
{
    // All 4096 pairs under escalating fault sets, fault-free
    // included: the compressed encoding must be exact everywhere the
    // oracle says a path exists, and must report FAIL exactly where
    // it says none does.
    const IadmTopology topo(64);
    Rng rng(20260808);
    const FaultSet fault_sets[] = {
        FaultSet{},
        fault::randomLinkFaults(topo, 8, rng),
        fault::randomLinkFaults(topo, 48, rng),
        fault::randomSwitchFaults(topo, 6, rng),
    };
    for (const FaultSet &faults : fault_sets)
        for (Label s = 0; s < 64; ++s)
            for (Label d = 0; d < 64; ++d)
                expectDeltaRoundTrip(topo, faults, s, d);
}

TEST(RouteCache, DeltaRoundTripRandomizedN1024)
{
    // The large-network rung: random pairs at N=1024 (10 stages, so
    // deltas use bits the exhaustive rung never touches) under
    // random fault sets of growing weight.
    const IadmTopology topo(1024);
    Rng rng(424242);
    for (const std::size_t weight : {0u, 32u, 256u, 1024u}) {
        const FaultSet faults =
            fault::randomLinkFaults(topo, weight, rng);
        for (int trial = 0; trial < 256; ++trial) {
            const auto s = static_cast<Label>(rng.uniform(1024));
            const auto d = static_cast<Label>(rng.uniform(1024));
            expectDeltaRoundTrip(topo, faults, s, d);
        }
    }
}

TEST(RouteCache, TruncatedVersionHighWordNeverAliases)
{
    // Entries store 32-bit truncated stamps.  Two full versions that
    // share a low word must never be confused: the table clears
    // itself when the high word moves.
    const IadmTopology topo(16);
    RouteCache cache(16);
    const std::uint64_t low = 7;
    const auto [e1, hit1] =
        cache.acquire(3, 11, low, RouteCache::Entry::kUniversal);
    EXPECT_FALSE(hit1);
    e1->flags |= RouteCache::Entry::kOk;

    const auto [e2, hit2] =
        cache.acquire(3, 11, low, RouteCache::Entry::kUniversal);
    EXPECT_TRUE(hit2);

    // Same low word, different high word: a stale entry under
    // truncation-blind matching, so it must miss.
    const std::uint64_t aliased = (std::uint64_t{1} << 32) | low;
    const auto [e3, hit3] =
        cache.acquire(3, 11, aliased, RouteCache::Entry::kUniversal);
    EXPECT_FALSE(hit3);
    e3->flags |= RouteCache::Entry::kOk;
    const auto [e4, hit4] =
        cache.acquire(3, 11, aliased, RouteCache::Entry::kUniversal);
    EXPECT_TRUE(hit4);
}

TEST(RouteCache, FailOutcomesAreCachedToo)
{
    const IadmTopology topo(16);
    FaultSet faults;
    // Seal source 5 in: all three stage-0 output links blocked means
    // no destination is reachable (REROUTE reports FAIL for all).
    faults.blockLink(topo.straightLink(0, 5));
    faults.blockLink(topo.plusLink(0, 5));
    faults.blockLink(topo.minusLink(0, 5));
    RouteCache cache(16);

    const auto [e1, hit1] =
        cache.resolveUniversal(topo, faults, 5, 12);
    EXPECT_FALSE(hit1);
    EXPECT_FALSE(e1->ok());

    // The second unroutable packet replays the FAIL bit instead of
    // re-running the (worst-case) path search.
    const auto [e2, hit2] =
        cache.resolveUniversal(topo, faults, 5, 12);
    EXPECT_TRUE(hit2);
    EXPECT_FALSE(e2->ok());
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RouteCache, TinyCapacityEvictsButNeverLies)
{
    // A one-slot table is the adversarial extreme: every pair
    // collides, every insert after the first evicts.  Answers must
    // still be exactly the fresh REROUTE answers.
    const IadmTopology topo(16);
    FaultSet faults;
    faults.blockLink(topo.plusLink(1, 3));
    RouteCache cache(16, 1);
    ASSERT_EQ(cache.capacity(), 1u);

    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto [e, hit] =
                cache.resolveUniversal(topo, faults, s, d);
            EXPECT_FALSE(hit);
            const auto fresh =
                core::universalRoute(topo, faults, s, d);
            ASSERT_EQ(e->ok(), fresh.ok);
            if (fresh.ok) {
                EXPECT_EQ(e->tagFor(topo.stages()), fresh.tag);
            }
        }
    }
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 256u);
    // 256 misses into one slot: all but the very first claim evicted
    // a live entry.
    EXPECT_EQ(cache.stats().evictions, 255u);

    // A repeated pair still hits while it survives.
    const auto [e_last, hit_again] =
        cache.resolveUniversal(topo, faults, 15, 15);
    EXPECT_TRUE(hit_again);
    EXPECT_TRUE(e_last->ok());
}

TEST(RouteCache, HighLoadFactorKeepsRepeatsHitting)
{
    const IadmTopology topo(64);
    FaultSet faults;
    faults.blockLink(topo.plusLink(2, 17));
    // 4096 pairs into 256 slots: a 16x oversubscription.
    RouteCache cache(64, 256);

    for (Label s = 0; s < 64; ++s)
        for (Label d = 0; d < 64; ++d)
            (void)cache.resolveUniversal(topo, faults, s, d);
    const auto first_pass = cache.stats();
    EXPECT_EQ(first_pass.misses, 4096u);
    EXPECT_GT(first_pass.evictions, 0u);

    // Re-resolving a pair immediately after its fill must hit: the
    // claim-priority rules never leave a key shadowed by a stale
    // duplicate in its own probe window.
    cache.resetStats();
    for (Label s = 0; s < 64; ++s) {
        for (Label d = 0; d < 64; ++d) {
            (void)cache.resolveUniversal(topo, faults, s, d);
            const auto [e, hit] =
                cache.resolveUniversal(topo, faults, s, d);
            EXPECT_TRUE(hit) << s << "->" << d;
            EXPECT_EQ(e->ok(),
                      core::universalRoute(topo, faults, s, d).ok);
        }
    }
}

TEST(RouteCache, ClearDropsEntriesAndKeepsStats)
{
    const IadmTopology topo(16);
    FaultSet faults;
    faults.blockLink(topo.plusLink(0, 1));
    RouteCache cache(16);
    (void)cache.resolveUniversal(topo, faults, 1, 2);
    (void)cache.resolveUniversal(topo, faults, 1, 2);
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.clear();
    const auto [e_after, hit] =
        cache.resolveUniversal(topo, faults, 1, 2);
    EXPECT_FALSE(hit);
    EXPECT_TRUE(e_after->ok());
    EXPECT_EQ(cache.stats().hits, 1u); // preserved across clear()
}

/** Counters that must be identical for identically-routed runs. */
std::vector<std::uint64_t>
routingSignature(const Metrics &m)
{
    std::vector<std::uint64_t> sig{
        m.injected(),  m.delivered(),     m.throttled(),
        m.unroutable(), m.dropped(),      m.totalHops(),
        m.totalReroutes(), m.totalStalls(), m.backtrackHops(),
        m.maxLatency()};
    for (unsigned s = 0; s < m.stages(); ++s) {
        sig.push_back(m.stallsAt(s));
        sig.push_back(m.reroutesAt(s));
    }
    return sig;
}

TEST(RouteCache, WarmupOrderCannotChangeDeliveredOutcomes)
{
    // Three same-seed faulted sims: cold cache, cache pre-warmed in
    // a deliberately odd order, and cache disabled.  REROUTE is a
    // pure function of (topology, faults, src, dst), so all three
    // must inject, route, stall and deliver identically — the cache
    // can only move hit/miss counters.
    const Label n = 32;
    const auto schemes = {RoutingScheme::TsdtSender,
                          RoutingScheme::TsdtDynamic};
    for (const RoutingScheme scheme : schemes) {
        SimConfig cfg;
        cfg.netSize = n;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.3;
        cfg.seed = 77;

        FaultSet faults;
        const IadmTopology topo(n);
        faults.blockLink(topo.plusLink(1, 3));
        faults.blockLink(topo.straightLink(2, 20));
        faults.blockLink(topo.minusLink(3, 9));

        NetworkSim cold(cfg, std::make_unique<UniformTraffic>(n),
                        faults);
        NetworkSim warmed(cfg, std::make_unique<UniformTraffic>(n),
                          faults);
        NetworkSim off(cfg, std::make_unique<UniformTraffic>(n),
                       faults);
        off.setRouteCacheEnabled(false);

        ASSERT_NE(warmed.routeCache(), nullptr);
        // Backwards, strided warm-up: nothing like injection order.
        for (Label s = n; s-- > 0;)
            for (Label d = (s * 7) & (n - 1), k = 0; k < n;
                 ++k, d = (d + 5) & (n - 1))
                (void)warmed.routeCache()->resolveUniversal(
                    warmed.topology(), warmed.faults(), s, d);

        cold.run(400);
        warmed.run(400);
        off.run(400);

        EXPECT_EQ(routingSignature(cold.metrics()),
                  routingSignature(warmed.metrics()))
            << routingSchemeName(scheme);
        EXPECT_EQ(routingSignature(cold.metrics()),
                  routingSignature(off.metrics()))
            << routingSchemeName(scheme);
        // Hit/miss counters are the only thing allowed to move, and
        // their sum (= resolutions attempted) cannot: injection is
        // identical.  The split itself may shift either way — warm
        // universal-mode entries can collide with the dynamic
        // scheme's initial-trace entries.
        EXPECT_EQ(warmed.metrics().routeCacheHits() +
                      warmed.metrics().routeCacheMisses(),
                  cold.metrics().routeCacheHits() +
                      cold.metrics().routeCacheMisses())
            << routingSchemeName(scheme);
        EXPECT_GT(cold.metrics().routeCacheHits(), 0u)
            << routingSchemeName(scheme);
        EXPECT_EQ(off.metrics().routeCacheHits() +
                      off.metrics().routeCacheMisses(),
                  0u);
    }
}

TEST(RouteCache, ChurnEpochBumpsKeepCachedRoutingExact)
{
    // Fault churn bumps FaultSet::version() hundreds of times per
    // run, so every cached entry is repeatedly invalidated and
    // re-resolved mid-traffic.  Across all those epochs the cache
    // must stay pure overhead: a cache-off twin fed the identical
    // churn schedule (same process type + seed => same transitions)
    // routes byte-for-byte the same.  IADM_SANITIZE builds also
    // cross-check every injection-time hit against a fresh
    // resolution, so merely running this is the consistency audit.
    const Label n = 32;
    for (const RoutingScheme scheme :
         {RoutingScheme::TsdtSender, RoutingScheme::TsdtDynamic}) {
        SimConfig cfg;
        cfg.netSize = n;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.3;
        cfg.seed = 78;

        NetworkSim on(cfg, std::make_unique<UniformTraffic>(n));
        NetworkSim off(cfg, std::make_unique<UniformTraffic>(n));
        off.setRouteCacheEnabled(false);
        for (NetworkSim *s : {&on, &off})
            s->addFaultProcess(std::make_unique<fault::GeometricChurn>(
                s->topology(), 250.0, 50.0, 4242));

        on.run(1500);
        off.run(1500);

        // The churn schedules really were identical...
        ASSERT_EQ(on.metrics().faultDowns(), off.metrics().faultDowns())
            << routingSchemeName(scheme);
        ASSERT_GT(on.metrics().faultDowns(), 0u);
        EXPECT_EQ(on.faults().str(), off.faults().str());
        // ...and the cache changed nothing observable but hit rates.
        EXPECT_EQ(routingSignature(on.metrics()),
                  routingSignature(off.metrics()))
            << routingSchemeName(scheme);
        EXPECT_GT(on.metrics().routeCacheMisses(), 0u);
        EXPECT_EQ(off.metrics().routeCacheHits() +
                      off.metrics().routeCacheMisses(),
                  0u);
    }
}

TEST(RouteCache, SimExposesCacheOnlyForTagResolvingSchemes)
{
    SimConfig cfg;
    cfg.netSize = 16;
    for (const auto scheme :
         {RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
          RoutingScheme::DistanceTag}) {
        cfg.scheme = scheme;
        NetworkSim s(cfg, std::make_unique<UniformTraffic>(16));
        EXPECT_EQ(s.routeCache(), nullptr)
            << routingSchemeName(scheme);
        EXPECT_FALSE(s.routeCacheEnabled());
    }
    for (const auto scheme :
         {RoutingScheme::TsdtSender, RoutingScheme::TsdtDynamic}) {
        cfg.scheme = scheme;
        NetworkSim s(cfg, std::make_unique<UniformTraffic>(16));
        EXPECT_NE(s.routeCache(), nullptr)
            << routingSchemeName(scheme);
        EXPECT_TRUE(s.routeCacheEnabled());
    }
    // Config opt-out: the cache still exists (toggleable) but starts
    // disabled.
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.routeCache = false;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(16));
    EXPECT_NE(s.routeCache(), nullptr);
    EXPECT_FALSE(s.routeCacheEnabled());
}

} // namespace
} // namespace iadm
