/**
 * @file
 * Scenario-grammar suite (`ctest -L scenario`): parse round-trips
 * and rejection regressions for the composable traffic subsystem,
 * statistical checks of every destination source and shaper, the
 * closed-loop feedback contract, and sweep determinism for the new
 * scenario axis — byte-identical reports across worker counts and
 * shard counts, pinned by a dedicated golden fixture
 * (tests/data/golden_sweep_scenarios_n64.json).
 *
 * Regenerating the fixture (only after an *intentional* behaviour
 * change):
 *   IADM_REGEN_GOLDEN=1 ./scenario_test
 * and commit the updated file with an explanation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;

#ifndef IADM_TEST_DATA_DIR
#error "IADM_TEST_DATA_DIR must point at tests/data"
#endif

// --- parse round-trips --------------------------------------------

TEST(ScenarioParse, CanonicalNameReparsesToEqualSpec)
{
    for (const std::string spec : {
             "dst:uniform",
             "dst:hotspot:0:0.2",
             "dst:hotspot:0+5+9:0.3",
             "dst:perm:shift:4",
             "dst:perm:bitrev",
             "dst:perm:transpose",
             "dst:perm:complement:63",
             "dst:perm:shuffle",
             "dst:perm:exchange:2",
             "dst:adversarial",
             "dst:mcast:4:8",
             "shape:bursty:16:64/dst:uniform",
             "shape:ramp:0.1:0.9:2000/dst:uniform",
             "shape:closed:4/dst:uniform",
             "shape:ramp:0.1:0.9:2000/over:bursty:16:64/"
             "dst:hotspot:0:0.2",
             "shape:bursty:8:32/over:closed:2/dst:perm:bitrev",
         }) {
        const auto s = ScenarioSpec::parse(spec);
        ASSERT_TRUE(s.has_value()) << spec;
        EXPECT_EQ(s->name(), spec) << "non-canonical input? " << spec;
        const auto again = ScenarioSpec::parse(s->name());
        ASSERT_TRUE(again.has_value()) << s->name();
        EXPECT_TRUE(*again == *s)
            << "round trip changed the spec: " << spec;
    }
}

TEST(ScenarioParse, SugarAtomsNormalizeToCanonicalClauses)
{
    const auto canon = [](const std::string &spec) {
        const auto s = ScenarioSpec::parse(spec);
        EXPECT_TRUE(s.has_value()) << spec;
        return s ? s->name() : std::string("<unparsed>");
    };
    EXPECT_EQ(canon("uniform"), "dst:uniform");
    EXPECT_EQ(canon("hotspot:0:0.2"), "dst:hotspot:0:0.2");
    EXPECT_EQ(canon("bitrev"), "dst:perm:bitrev");
    EXPECT_EQ(canon("transpose"), "dst:perm:transpose");
    EXPECT_EQ(canon("shift:5"), "dst:perm:shift:5");
    EXPECT_EQ(canon("bursty:16:64"), "shape:bursty:16:64/dst:uniform");
    // over: and shape: are interchangeable on input.
    EXPECT_EQ(canon("over:bursty:16:64/dst:uniform"),
              "shape:bursty:16:64/dst:uniform");
    // Clause order is free on input; the name is shapers-then-dst.
    EXPECT_EQ(canon("dst:uniform/shape:closed:4"),
              "shape:closed:4/dst:uniform");
}

TEST(ScenarioParse, TrafficSpecRoundTripsThroughScenarioKind)
{
    // TrafficSpec::parse must keep the four legacy spellings frozen
    // (golden fixtures bake them into report JSON) and route
    // everything else through the scenario grammar.
    for (const std::string spec :
         {"uniform", "bitrev", "transpose", "hotspot:0:0.2"}) {
        const auto t = TrafficSpec::parse(spec);
        ASSERT_TRUE(t.has_value()) << spec;
        EXPECT_NE(t->kind, TrafficSpec::Kind::Scenario) << spec;
        EXPECT_EQ(t->name(), spec);
    }
    for (const std::string spec :
         {"shift:5", "bursty:16:64", "dst:adversarial",
          "dst:hotspot:0+5:0.3", "shape:closed:4/dst:uniform"}) {
        const auto t = TrafficSpec::parse(spec);
        ASSERT_TRUE(t.has_value()) << spec;
        EXPECT_EQ(t->kind, TrafficSpec::Kind::Scenario) << spec;
        const auto again = TrafficSpec::parse(t->name());
        ASSERT_TRUE(again.has_value()) << t->name();
        EXPECT_TRUE(*again == *t) << spec;
    }
}

// --- rejection regressions ----------------------------------------

TEST(ScenarioParse, RejectsMalformedSpecs)
{
    for (const std::string spec : {
             "",                        //
             "lava",                    // unknown atom
             "uniform:1",               // excess args
             "hotspot:a",               // non-numeric node
             "hotspot:0:-0.1",          // fraction < 0
             "hotspot:0:1.5",           // fraction > 1
             "hotspot:0:nan",           // non-finite via stod
             "hotspot:0:inf",           //
             "hotspot:0:0.2:9",         // excess args
             "hotspot:3+3:0.2",         // duplicate hot node
             "shift",                   // missing distance
             "shift:0",                 // identity typo
             "shift:x",                 //
             "bursty:16",               // missing idle length
             "bursty:0.5:64",           // burst < 1
             "bursty:16:0.5",           // idle < 1
             "dst:perm:complement",     // missing mask
             "dst:perm:complement:0",   // identity typo
             "dst:perm:exchange",       // missing dimension
             "dst:perm:lava",           // unknown family
             "dst:mcast:0:8",           // zero groups
             "dst:mcast:4:1",           // fanout < 2
             "dst:mcast:4",             // missing fanout
             "shape:ramp:0.1:1.5:100",  // factor > 1
             "shape:ramp:-0.1:0.9:100", // factor < 0
             "shape:ramp:0.1:0.9:0",    // zero ramp window
             "shape:ramp:0.1:0.9",      // missing window
             "shape:closed:0",          // zero window
             "shape:closed",            //
             "shape:lava:1",            // unknown shaper
             "dst:uniform/dst:uniform", // two destination sources
             "dst:uniform/uniform",     // ditto, via sugar
         }) {
        EXPECT_FALSE(TrafficSpec::parse(spec).has_value())
            << "should have been rejected: " << spec;
    }
}

TEST(ScenarioValidate, RejectsOutOfRangeSpecsAtN)
{
    const auto diag = [](const std::string &spec, Label n) {
        const auto t = TrafficSpec::parse(spec);
        EXPECT_TRUE(t.has_value()) << spec;
        if (!t)
            return std::string("<unparsed>");
        const auto err = t->validate(n);
        return err.value_or("");
    };
    // The original bug: hotspot:9999:0.2 at N=64 injected label 9999
    // straight into the link tables.
    EXPECT_NE(diag("hotspot:9999:0.2", 64), "");
    EXPECT_NE(diag("hotspot:64:0.2", 64), "");  // boundary
    EXPECT_EQ(diag("hotspot:63:0.2", 64), "");
    EXPECT_NE(diag("dst:hotspot:0+64:0.2", 64), ""); // in a hot set
    EXPECT_NE(diag("shift:64", 64), "");
    EXPECT_EQ(diag("shift:63", 64), "");
    EXPECT_NE(diag("dst:perm:complement:64", 64), "");
    EXPECT_NE(diag("dst:perm:exchange:6", 64), ""); // 6 bits: 0..5
    EXPECT_EQ(diag("dst:perm:exchange:5", 64), "");
    EXPECT_NE(diag("transpose", 32), ""); // 5 label bits, odd
    EXPECT_EQ(diag("transpose", 64), "");
    EXPECT_NE(diag("dst:perm:transpose", 32), "");
    EXPECT_NE(diag("dst:mcast:4:65", 64), ""); // fanout > N
    EXPECT_NE(diag("dst:mcast:128:8", 64), ""); // groups > N
    EXPECT_EQ(diag("dst:mcast:4:8", 64), "");
}

// --- destination-source statistics --------------------------------

TEST(ScenarioStats, HotspotHitFractionMatchesSpec)
{
    const Label n = 64;
    const auto t = TrafficSpec::parse("hotspot:3:0.3");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(n);
    Rng rng(42);
    const int draws = 100000;
    int hot = 0;
    for (int i = 0; i < draws; ++i)
        hot += pattern->pick(0, rng) == 3 ? 1 : 0;
    // Hot draws plus the uniform tail landing on the hot node.
    const double expect = 0.3 + 0.7 / n;
    EXPECT_NEAR(static_cast<double>(hot) / draws, expect, 0.01);
}

TEST(ScenarioStats, MultiHotspotSplitsTheHotFractionAcrossTheSet)
{
    const Label n = 64;
    const auto t = TrafficSpec::parse("dst:hotspot:1+2+3:0.5");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(n);
    Rng rng(42);
    const int draws = 150000;
    int set_hits = 0;
    int node1 = 0;
    for (int i = 0; i < draws; ++i) {
        const Label d = pattern->pick(0, rng);
        if (d >= 1 && d <= 3)
            ++set_hits;
        if (d == 1)
            ++node1;
    }
    const double set_expect = 0.5 + 0.5 * 3.0 / n;
    const double node_expect = 0.5 / 3.0 + 0.5 / n;
    EXPECT_NEAR(static_cast<double>(set_hits) / draws, set_expect,
                0.01);
    EXPECT_NEAR(static_cast<double>(node1) / draws, node_expect,
                0.01);
}

TEST(ScenarioStats, ShiftAndBitrevPicksMatchThePermutationFamily)
{
    const Label n = 64;
    const auto shift = TrafficSpec::parse("shift:5");
    ASSERT_TRUE(shift.has_value());
    auto sp = shift->make(n);
    const perm::Permutation sref = perm::shiftPerm(n, 5);
    const auto bitrev = TrafficSpec::parse("bitrev");
    ASSERT_TRUE(bitrev.has_value());
    auto bp = bitrev->make(n);
    const perm::Permutation bref = perm::bitReversalPerm(n);
    Rng rng(1);
    for (Label src = 0; src < n; ++src) {
        EXPECT_EQ(sp->pick(src, rng), sref(src)) << src;
        EXPECT_EQ(bp->pick(src, rng), bref(src)) << src;
    }
}

TEST(ScenarioStats, BurstyDutyCycleMatchesMeasuredGateOpenFraction)
{
    BurstyTraffic bt(4, 16.0, 64.0);
    ASSERT_DOUBLE_EQ(bt.dutyCycle(), 0.2);
    Rng rng(7);
    const int cycles = 200000;
    int open = 0;
    for (int c = 0; c < cycles; ++c)
        open += bt.gate(0, rng) ? 1 : 0;
    // The chain decorrelates over ~(burst+idle) cycles, so the
    // effective sample count is cycles / 80; tolerance sized to it.
    EXPECT_NEAR(static_cast<double>(open) / cycles, bt.dutyCycle(),
                0.02);

    // The scenario-composed form must show the same duty cycle.
    const auto t = TrafficSpec::parse("shape:bursty:16:64/dst:uniform");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(4);
    ASSERT_TRUE(pattern->gated());
    Rng rng2(7);
    int open2 = 0;
    for (int c = 0; c < cycles; ++c)
        open2 += pattern->gate(0, rng2) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(open2) / cycles, 0.2, 0.02);
}

TEST(ScenarioStats, RampFactorFollowsTheConfiguredSchedule)
{
    // rampFrom = 0 and rampTo = 1 make the schedule deterministic at
    // the endpoints: every gate closed at cycle 0, every gate open
    // once the ramp window has elapsed.
    const auto t = TrafficSpec::parse("shape:ramp:0:1:1000/dst:uniform");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(8);
    Rng rng(3);
    pattern->beginCycle(0);
    for (Label s = 0; s < 8; ++s)
        EXPECT_FALSE(pattern->gate(s, rng));
    pattern->beginCycle(2000);
    for (Label s = 0; s < 8; ++s)
        EXPECT_TRUE(pattern->gate(s, rng));
    // Midpoint: factor 0.5 within statistical tolerance.
    pattern->beginCycle(500);
    int open = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        open += pattern->gate(0, rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(open) / draws, 0.5, 0.02);
}

TEST(ScenarioStats, AdversarialPermIsADeterministicNontrivialBijection)
{
    const Label n = 64;
    const perm::Permutation p = adversarialPerm(n);
    const perm::Permutation q = adversarialPerm(n);
    std::set<Label> images;
    bool identity = true;
    for (Label src = 0; src < n; ++src) {
        EXPECT_EQ(p(src), q(src)) << "non-deterministic at " << src;
        EXPECT_LT(p(src), n);
        images.insert(p(src));
        identity = identity && p(src) == src;
    }
    EXPECT_EQ(images.size(), n) << "not a bijection";
    EXPECT_FALSE(identity);
}

TEST(ScenarioStats, AdversarialPermCongestsUnlikeAnAdmissibleShift)
{
    // The point of the greedy construction: under the same open-loop
    // rate, the adversarial permutation piles contention onto shared
    // switches, while an admissible shift permutation sails through
    // conflict-free.  (Bitrev already saturates this rate, so the
    // admissible family is the discriminating baseline.)
    const auto run = [](const std::string &spec) {
        SimConfig cfg;
        cfg.netSize = 64;
        cfg.scheme = RoutingScheme::TsdtSender;
        cfg.injectionRate = 0.4;
        cfg.seed = 11;
        NetworkSim s(cfg,
                     TrafficSpec::parse(spec).value().make(64));
        s.run(600);
        return s.metrics().totalStalls();
    };
    const auto adversarial = run("dst:adversarial");
    EXPECT_GT(adversarial, 10 * run("shift:1"))
        << "greedy worst case failed to congest";
    EXPECT_GT(adversarial, 1000u);
}

TEST(ScenarioStats, McastSourcesCycleTheirGroupDestinationSet)
{
    const Label n = 64;
    const auto t = TrafficSpec::parse("dst:mcast:4:8");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(n);
    Rng rng(5);
    // Each source visits exactly its fanout-8 set, cyclically.
    std::vector<std::vector<Label>> first_cycle(n);
    for (Label src = 0; src < n; ++src) {
        std::set<Label> seen;
        for (int i = 0; i < 16; ++i) {
            const Label d = pattern->pick(src, rng);
            EXPECT_LT(d, n);
            if (i < 8)
                first_cycle[src].push_back(d);
            else
                EXPECT_EQ(d, first_cycle[src][i - 8])
                    << "not cyclic at src " << src;
            seen.insert(d);
        }
        EXPECT_EQ(seen.size(), 8u) << "wrong fanout at src " << src;
    }
    // Sources in the same group (src mod 4) share a destination set.
    for (Label src = 4; src < n; ++src) {
        std::set<Label> a(first_cycle[src].begin(),
                          first_cycle[src].end());
        std::set<Label> b(first_cycle[src % 4].begin(),
                          first_cycle[src % 4].end());
        EXPECT_EQ(a, b) << "group sets diverge at src " << src;
    }
}

// --- closed-loop feedback contract --------------------------------

TEST(ScenarioClosedLoop, WindowGatesAfterOutstandingLimit)
{
    const auto t = TrafficSpec::parse("shape:closed:2/dst:uniform");
    ASSERT_TRUE(t.has_value());
    auto pattern = t->make(8);
    EXPECT_TRUE(pattern->closedLoop());
    Rng rng(1);
    EXPECT_TRUE(pattern->gate(0, rng));
    pattern->onInject(0);
    EXPECT_TRUE(pattern->gate(0, rng));
    pattern->onInject(0);
    EXPECT_FALSE(pattern->gate(0, rng)) << "window 2 exhausted";
    EXPECT_TRUE(pattern->gate(1, rng)) << "windows are per-source";
    pattern->onRetire(0);
    EXPECT_TRUE(pattern->gate(0, rng));
}

TEST(ScenarioClosedLoop, SimulatorPinsShardsSerialForFeedback)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.9;
    cfg.shards = 8;
    cfg.seed = 3;
    NetworkSim s(
        cfg, TrafficSpec::parse("shape:closed:2").value().make(64));
    EXPECT_EQ(s.shards(), 1u)
        << "closed-loop traffic must run serial (onRetire fires "
           "from the service loop)";
    s.run(400);
    // The window cap binds: with at most 2 outstanding per source,
    // the live packet count can never exceed 2N.
    EXPECT_LE(s.inFlight(), std::size_t{128});
    EXPECT_GT(s.metrics().delivered(), 0u);
}

TEST(ScenarioClosedLoop, OutstandingWindowBoundsInFlightEveryCycle)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 1.0;
    cfg.maxPacketAge = 200;
    cfg.seed = 9;
    NetworkSim s(
        cfg, TrafficSpec::parse("shape:closed:3").value().make(64));
    for (Cycle c = 0; c < 500; ++c) {
        s.step();
        ASSERT_LE(s.inFlight(), std::size_t{3 * 64})
            << "window exceeded at cycle " << c;
        const Metrics &m = s.metrics();
        ASSERT_EQ(m.injected() - m.delivered() - m.dropped(),
                  s.inFlight())
            << "conservation broke at cycle " << c;
    }
}

// --- sweep determinism for the scenario axis ----------------------

/**
 * The frozen scenario grid (fixture
 * tests/data/golden_sweep_scenarios_n64.json).  Replicated verbatim
 * in tests/shard_test.cpp, which pins the same fixture at 2/4/8
 * shards; any edit here invalidates that copy and the fixture.
 */
SweepGrid
scenarioGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.3};
    grid.queueCapacities = {4};
    grid.traffics = {
        TrafficSpec::parse("shape:bursty:16:64/dst:hotspot:0:0.2")
            .value(),
        TrafficSpec::parse("dst:adversarial").value(),
        TrafficSpec::parse("dst:mcast:4:8").value(),
        TrafficSpec::parse("shape:ramp:0.2:0.8:500/dst:uniform")
            .value(),
        TrafficSpec::parse("shape:closed:4/dst:uniform").value(),
    };
    grid.replicates = 1;
    grid.warmupCycles = 200;
    grid.measureCycles = 800;
    grid.masterSeed = 20260808;
    return grid;
}

std::string
runScenarioGrid(unsigned workers, unsigned sim_shards)
{
    const SweepGrid grid = scenarioGrid();
    SweepOptions opts;
    opts.workers = workers;
    opts.simShards = sim_shards;
    return sweepReportJson(grid, runSweep(grid, opts));
}

const char *const kScenarioFixturePath =
    IADM_TEST_DATA_DIR "/golden_sweep_scenarios_n64.json";

TEST(ScenarioSweep, MatchesGoldenFixtureByteForByte)
{
    const std::string report = runScenarioGrid(2, 1);

    if (std::getenv("IADM_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(kScenarioFixturePath, std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << kScenarioFixturePath;
        os << report;
        GTEST_SKIP() << "fixture regenerated at "
                     << kScenarioFixturePath;
    }

    std::ifstream is(kScenarioFixturePath, std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << kScenarioFixturePath
                    << " (run with IADM_REGEN_GOLDEN=1 to create)";
    std::ostringstream fixture;
    fixture << is.rdbuf();
    ASSERT_EQ(report.size(), fixture.str().size());
    EXPECT_TRUE(report == fixture.str())
        << "scenario sweep diverged from the golden fixture";
}

TEST(ScenarioSweep, ReportBytesIdenticalAcrossWorkerCounts)
{
    const std::string one = runScenarioGrid(1, 1);
    EXPECT_EQ(one, runScenarioGrid(4, 1));
    EXPECT_EQ(one, runScenarioGrid(8, 1));
}

/**
 * The bursty-gate race regression: the per-source on/off bytes are
 * mutated from gate() in the serial draw phase, so any shard count
 * must reproduce the serial bytes exactly — and under TSan (this
 * suite is in the tsan preset) a word-sharing regression like the
 * old std::vector<bool> state would be flagged as a data race.
 */
TEST(ScenarioSweep, ReportBytesIdenticalAcrossShardCounts)
{
    const std::string serial = runScenarioGrid(2, 1);
    for (const unsigned shards : {2u, 4u, 8u})
        EXPECT_EQ(serial, runScenarioGrid(2, shards))
            << "shards=" << shards;
}

} // namespace
} // namespace iadm
