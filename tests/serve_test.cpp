/**
 * @file
 * Route-serving daemon suite (`ctest -L serve`; also in the tsan
 * preset — the concurrent-clients cases double as race detection
 * for the epoch-guard / churn-ticker handoff).
 *
 * Covers, bottom-up:
 *   - the wire protocol (parse, error surfacing, response bytes),
 *   - ServerCore byte-identity against direct
 *     universalRouteCompact() calls and across batch sizes,
 *   - the epoch discipline: one pinned epoch per batch, repin on
 *     in-batch fault mutation, torn-snapshot counter at zero under
 *     a concurrently ticking churn clock,
 *   - the socket front end end-to-end with K pipelining client
 *     threads against a churning daemon.
 *
 * Every socket read carries an SO_RCVTIMEO wedge-detection timeout:
 * a hung daemon fails the test with a readable diagnostic instead
 * of hanging ctest.
 */

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/reroute.hpp"
#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"
#include "serve/server.hpp"
#include "serve/server_core.hpp"
#include "serve/wire.hpp"
#include "sim/route_cache.hpp"
#include "topology/iadm.hpp"

namespace iadm::serve {
namespace {

// ---------------------------------------------------------------- wire

TEST(Wire, ParsesEveryOp)
{
    auto r = parseRequest(R"({"id":7,"op":"route","src":3,"dst":12})");
    EXPECT_EQ(r.op, Request::Op::Route);
    EXPECT_EQ(r.id, 7u);
    EXPECT_EQ(r.src, 3u);
    EXPECT_EQ(r.dst, 12u);

    r = parseRequest(R"({"op":"trace","src":0,"dst":1})");
    EXPECT_EQ(r.op, Request::Op::Trace);
    EXPECT_EQ(r.id, 0u);

    r = parseRequest(R"({"op":"stats"})");
    EXPECT_EQ(r.op, Request::Op::Stats);

    r = parseRequest(R"({"op":"inject-fault","link":"1:0:s"})");
    EXPECT_EQ(r.op, Request::Op::InjectFault);
    EXPECT_EQ(r.link, "1:0:s");

    r = parseRequest(R"({"op":"clear-fault","link":"0:2:m"})");
    EXPECT_EQ(r.op, Request::Op::ClearFault);

    r = parseRequest(R"({"op":"shutdown"})");
    EXPECT_EQ(r.op, Request::Op::Shutdown);
}

TEST(Wire, KeyOrderAndWhitespaceAreFlexible)
{
    const auto r =
        parseRequest(R"( { "dst" : 9 , "op" : "route" , "src" : 4 } )");
    EXPECT_EQ(r.op, Request::Op::Route);
    EXPECT_EQ(r.src, 4u);
    EXPECT_EQ(r.dst, 9u);
}

TEST(Wire, UnknownKeysAreSkippedForForwardCompat)
{
    const auto r = parseRequest(
        R"({"op":"route","src":1,"dst":2,"deadline":99,"tagx":"z"})");
    EXPECT_EQ(r.op, Request::Op::Route);
    EXPECT_EQ(r.src, 1u);
    EXPECT_EQ(r.dst, 2u);
}

TEST(Wire, MalformedInputYieldsBadWithDiagnostic)
{
    // Parse failures surface as Op::Bad (answered with an error
    // response) — never as a dropped connection or a bogus route.
    const char *cases[] = {
        "",
        "not json",
        "{\"op\":\"route\",\"src\":1}",     // missing dst
        "{\"op\":\"route\",\"dst\":1}",     // missing src
        "{\"src\":1,\"dst\":2}",            // missing op
        "{\"op\":\"warp\",\"src\":1,\"dst\":2}", // unknown op
        "{\"op\":\"inject-fault\"}",        // missing link
        "{\"op\":\"route\",\"src\":99999,\"dst\":1}", // out of range
        "{\"op\":\"route\",\"src\":-1,\"dst\":1}",
        "{\"op\":\"route\",\"src\":1,\"dst\":2",     // unterminated
    };
    for (const char *c : cases) {
        const auto r = parseRequest(c);
        EXPECT_EQ(r.op, Request::Op::Bad) << "input: " << c;
        EXPECT_FALSE(r.error.empty()) << "input: " << c;
    }
}

TEST(Wire, ResponseWriterBytes)
{
    std::string out;
    ResponseWriter w(out, 42);
    w.field("op", std::string_view("route"));
    w.field("epoch", std::uint64_t{7});
    w.field("ok", true);
    w.beginArray("path");
    w.element(3);
    w.element(1);
    w.endArray();
    w.finish();
    EXPECT_EQ(out, "{\"id\":42,\"op\":\"route\",\"epoch\":7,"
                   "\"ok\":true,\"path\":[3,1]}\n");
}

TEST(Wire, ParseLinkSpec)
{
    const topo::IadmTopology net(16);
    topo::Link l{};
    ASSERT_TRUE(parseLinkSpec(net, "1:0:s", l));
    EXPECT_EQ(l, net.straightLink(1, 0));
    ASSERT_TRUE(parseLinkSpec(net, "2:5:p", l));
    EXPECT_EQ(l, net.plusLink(2, 5));
    ASSERT_TRUE(parseLinkSpec(net, "0:3:m", l));
    EXPECT_EQ(l, net.minusLink(0, 3));
    EXPECT_FALSE(parseLinkSpec(net, "", l));
    EXPECT_FALSE(parseLinkSpec(net, "1:0", l));
    EXPECT_FALSE(parseLinkSpec(net, "1:0:x", l));
    EXPECT_FALSE(parseLinkSpec(net, "9:0:s", l));  // stage >= n
    EXPECT_FALSE(parseLinkSpec(net, "1:99:s", l)); // from >= N
}

// ---------------------------------------------------------- ServerCore

/** Canned faulted core: N=32, a seed-derived link scenario. */
ServerCore
makeFaultedCore(sim::RoutingScheme scheme, Label n_size = 32)
{
    ServeConfig cfg;
    cfg.netSize = n_size;
    cfg.scheme = scheme;
    cfg.seed = 11;
    const topo::IadmTopology net(n_size);
    fault::FaultSet faults;
    std::string err;
    if (!ServerCore::parseFaultArg(net, "links:5", cfg.seed, faults,
                                   err))
        ADD_FAILURE() << err;
    return ServerCore(cfg, std::move(faults));
}

std::vector<Request>
allPairRoutes(Label n_size, bool trace)
{
    std::vector<Request> reqs;
    std::uint64_t id = 1;
    for (Label s = 0; s < n_size; ++s)
        for (Label d = 0; d < n_size; ++d) {
            Request r;
            r.op = trace ? Request::Op::Trace : Request::Op::Route;
            r.id = id++;
            r.src = s;
            r.dst = d;
            reqs.push_back(r);
        }
    return reqs;
}

TEST(ServerCore, TsdtAnswersMatchDirectRerouteCalls)
{
    // The byte-identity oracle: every served tsdt answer must equal
    // a response rebuilt from a direct universalRouteCompact() call
    // — the daemon may add caching and batching, never answers.
    constexpr Label kN = 32;
    auto core = makeFaultedCore(sim::RoutingScheme::TsdtSender, kN);
    const topo::IadmTopology net(kN);
    fault::FaultSet faults;
    std::string err;
    ASSERT_TRUE(
        ServerCore::parseFaultArg(net, "links:5", 11, faults, err));

    const auto reqs = allPairRoutes(kN, /*trace=*/false);
    std::string got;
    core.resolveBatch(reqs.data(), reqs.size(), got);
    const std::uint64_t epoch = core.epoch();

    std::string want;
    for (const auto &r : reqs) {
        const auto c =
            core::universalRouteCompact(net, faults, r.src, r.dst);
        ResponseWriter w(want, r.id);
        w.field("op", std::string_view("route"));
        w.field("epoch", epoch);
        w.field("ok", c.ok);
        if (c.ok) {
            w.field("tag", c.tag.str());
            w.field("reroutes", static_cast<std::uint64_t>(
                                    c.reroutes));
        }
        w.finish();
    }
    EXPECT_EQ(got, want);

    // Replaying the same batch is all cache hits — and still the
    // same bytes.
    std::string again;
    core.resolveBatch(reqs.data(), reqs.size(), again);
    EXPECT_EQ(again, want);
    const auto st = core.statsSnapshot();
    EXPECT_GT(st.routeHits, 0u);
}

TEST(ServerCore, TracePathsMatchDecodeDelta)
{
    constexpr Label kN = 16;
    auto core = makeFaultedCore(sim::RoutingScheme::TsdtSender, kN);
    const topo::IadmTopology net(kN);
    const unsigned n = net.stages();

    const auto reqs = allPairRoutes(kN, /*trace=*/true);
    std::string got;
    std::vector<ServerCore::Extent> extents;
    core.resolveBatch(reqs.data(), reqs.size(), got, &extents);
    ASSERT_EQ(extents.size(), reqs.size());

    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const std::string line =
            got.substr(extents[i].off, extents[i].len);
        const auto tag_pos = line.find("\"tag\":\"");
        if (tag_pos == std::string::npos)
            continue; // unroutable pair: no tag, no path
        // The served path must be decodeDelta() of the served tag's
        // state bits — one encoding, one decoder, end to end.
        const std::string tag_str = line.substr(
            tag_pos + 7, line.find('"', tag_pos + 7) - tag_pos - 7);
        // TsdtTag::str() renders b_0..b_{2n-1} LSB first; the state
        // bits are b_n..b_{2n-1}, so state bit i is character n+i.
        ASSERT_EQ(tag_str.size(), 2 * n);
        Label state_bits = 0;
        for (unsigned k = 0; k < n; ++k)
            if (tag_str[n + k] == '1')
                state_bits |= Label{1} << k;
        std::uint16_t sw[sim::RouteCache::kMaxPathSw];
        const unsigned cnt = core::decodeDelta(
            reqs[i].src, reqs[i].dst, state_bits, n, sw);
        std::string path = "\"path\":[";
        for (unsigned k = 0; k < cnt; ++k)
            path += std::to_string(sw[k]) + (k + 1 < cnt ? "," : "");
        path += "]";
        EXPECT_NE(line.find(path), std::string::npos)
            << "line: " << line << "\nwant " << path;
        EXPECT_EQ(sw[0], reqs[i].src);
        EXPECT_EQ(sw[cnt - 1] , reqs[i].dst);
    }
}

TEST(ServerCore, BatchedBytesEqualOneAtATimeForEveryScheme)
{
    // The acceptance invariant behind `--no-batch`: batching is a
    // perf lever, not a semantics lever.  For every scheme the
    // concatenated one-request "batches" must produce byte-identical
    // responses to one big batch (fresh cores each side — ssdt
    // serving state is persistent by design).
    const sim::RoutingScheme schemes[] = {
        sim::RoutingScheme::TsdtSender,
        sim::RoutingScheme::TsdtDynamic,
        sim::RoutingScheme::SsdtStatic,
        sim::RoutingScheme::SsdtBalanced,
        sim::RoutingScheme::DistanceTag,
    };
    constexpr Label kN = 16;
    const auto reqs = allPairRoutes(kN, /*trace=*/true);
    for (const auto s : schemes) {
        auto batched = makeFaultedCore(s, kN);
        std::string big;
        batched.resolveBatch(reqs.data(), reqs.size(), big);

        auto single = makeFaultedCore(s, kN);
        std::string one_by_one;
        for (const auto &r : reqs)
            single.resolveBatch(&r, 1, one_by_one);

        EXPECT_EQ(big, one_by_one)
            << "scheme " << sim::routingSchemeName(s);
    }
}

TEST(ServerCore, InjectFaultRepinsEpochAndInvalidatesCache)
{
    ServeConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    ServerCore core(cfg);
    const std::uint64_t e0 = core.epoch();

    // Mid-batch mutation: the requests before the inject see the
    // pinned epoch, the inject and everything after see the new one
    // — exactly what an unbatched server would have produced.
    Request before;
    before.op = Request::Op::Route;
    before.id = 1;
    before.src = 2;
    before.dst = 9;
    Request inject;
    inject.op = Request::Op::InjectFault;
    inject.id = 2;
    inject.link = "1:2:s";
    Request after = before;
    after.id = 3;
    const Request batch[] = {before, inject, after};

    std::string out;
    std::vector<ServerCore::Extent> ext;
    core.resolveBatch(batch, 3, out, &ext);
    ASSERT_EQ(ext.size(), 3u);
    const auto line = [&](std::size_t i) {
        return out.substr(ext[i].off, ext[i].len);
    };
    const std::string e0s = "\"epoch\":" + std::to_string(e0);
    EXPECT_NE(line(0).find(e0s), std::string::npos) << line(0);
    EXPECT_EQ(line(1).find(e0s), std::string::npos) << line(1);
    EXPECT_NE(line(2).find(line(1).substr(
                  line(1).find("\"epoch\":"), 10)),
              std::string::npos);
    EXPECT_GT(core.epoch(), e0);

    // A repeat of the same batch must not be torn either.
    const auto st = core.statsSnapshot();
    EXPECT_EQ(st.epochTorn, 0u);

    // And clear-fault releases the claim: epoch moves again, the
    // fault count returns to zero.
    Request clear = inject;
    clear.op = Request::Op::ClearFault;
    clear.id = 4;
    std::string out2;
    core.resolveBatch(&clear, 1, out2);
    EXPECT_NE(out2.find("\"faults\":0"), std::string::npos) << out2;
}

TEST(ServerCore, BadRequestsGetErrorResponsesAndCount)
{
    ServeConfig cfg;
    cfg.netSize = 16;
    ServerCore core(cfg);
    Request bad = parseRequest("{\"op\":\"nope\"}");
    Request oob;
    oob.op = Request::Op::Route;
    oob.id = 5;
    oob.src = 500; // parseable but out of range for N=16
    oob.dst = 1;
    const Request batch[] = {bad, oob};
    std::string out;
    core.resolveBatch(batch, 2, out);
    EXPECT_NE(out.find("\"error\":"), std::string::npos);
    EXPECT_EQ(core.statsSnapshot().errors, 2u);
}

// ------------------------------------------------------------- socket

/** Blocking test client with a wedge-detection receive timeout. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        timeval tv{};
        tv.tv_sec = 10; // a wedged daemon fails loudly, not silently
        if (connected_)
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
    }
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool send(const std::string &s)
    {
        std::size_t off = 0;
        while (off < s.size()) {
            const ssize_t n = ::send(fd_, s.data() + off,
                                     s.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /** One response line (without '\n'); "" on timeout/EOF. */
    std::string recvLine()
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return {}; // timeout (wedge) or EOF
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
    std::string buf_;
};

std::string
testSocketPath(const char *tag)
{
    return "/tmp/iadm_serve_test_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** Extract the integer after `"key":` or fail. */
std::uint64_t
jsonInt(const std::string &line, const std::string &key)
{
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " in " << line;
    if (pos == std::string::npos)
        return 0;
    return std::strtoull(line.c_str() + pos + key.size() + 3,
                         nullptr, 10);
}

TEST(RouteServer, RoundTripAndShutdown)
{
    ServeConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    ServerCore core(cfg);
    RouteServer server(core, testSocketPath("rt"));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    std::thread loop([&] { server.run(); });

    Client c(server.socketPath());
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.send("{\"id\":1,\"op\":\"route\",\"src\":3,"
                       "\"dst\":12}\n"
                       "{\"id\":2,\"op\":\"stats\"}\n"
                       "not json\n"
                       "{\"id\":4,\"op\":\"shutdown\"}\n"));
    const std::string r1 = c.recvLine();
    EXPECT_NE(r1.find("\"id\":1"), std::string::npos) << r1;
    EXPECT_NE(r1.find("\"ok\":true"), std::string::npos) << r1;
    const std::string r2 = c.recvLine();
    EXPECT_NE(r2.find("\"requests\":"), std::string::npos) << r2;
    const std::string r3 = c.recvLine();
    EXPECT_NE(r3.find("\"error\":"), std::string::npos) << r3;
    const std::string r4 = c.recvLine();
    EXPECT_NE(r4.find("\"op\":\"shutdown\""), std::string::npos)
        << r4;

    loop.join(); // shutdown request must terminate run()
    EXPECT_EQ(server.accepted(), 1u);
}

TEST(RouteServer, EpochConsistencyUnderChurnManyClients)
{
    // The tentpole acceptance: K pipelining client threads against a
    // daemon whose fault set is churning underneath on the ticker
    // thread.  Every response's epoch stamp must be internally
    // consistent (monotone per connection — batches pin, churn only
    // advances), and the torn-snapshot counter must end at zero.
    ServeConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    cfg.seed = 3;
    cfg.tickUs = 100; // aggressive churn clock
    const auto churn = sim::ChurnSpec::parse("bernoulli:0.02:0.1");
    ASSERT_TRUE(churn.has_value());
    cfg.churn = *churn;

    const topo::IadmTopology net(cfg.netSize);
    fault::FaultSet faults;
    std::string err;
    ASSERT_TRUE(ServerCore::parseFaultArg(net, "links:8", cfg.seed,
                                          faults, err))
        << err;
    ServerCore core(cfg, std::move(faults));
    RouteServer server(core, testSocketPath("churn"));
    ASSERT_TRUE(server.start(&err)) << err;
    std::thread loop([&] { server.run(); });
    ChurnTicker ticker(core);

    constexpr int kClients = 4;
    constexpr int kRequests = 300;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            Client c(server.socketPath());
            if (!c.connected()) {
                ++failures;
                return;
            }
            std::uint64_t last_epoch = 0;
            for (int i = 0; i < kRequests; ++i) {
                const Label src =
                    static_cast<Label>((t * 17 + i) % 64);
                const Label dst =
                    static_cast<Label>((t * 31 + i * 7) % 64);
                std::string req = "{\"id\":" +
                                  std::to_string(i + 1) +
                                  ",\"op\":\"route\",\"src\":" +
                                  std::to_string(src) +
                                  ",\"dst\":" +
                                  std::to_string(dst) + "}\n";
                if (!c.send(req)) {
                    ++failures;
                    return;
                }
                const std::string line = c.recvLine();
                if (line.empty()) { // wedge timeout
                    ++failures;
                    return;
                }
                const auto id = jsonInt(line, "id");
                const auto epoch = jsonInt(line, "epoch");
                if (id != static_cast<std::uint64_t>(i + 1))
                    ++failures;
                if (epoch < last_epoch) // churn only advances
                    ++failures;
                last_epoch = epoch;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.stop();
    loop.join();

    EXPECT_EQ(failures.load(), 0);
    const auto st = core.statsSnapshot();
    EXPECT_EQ(st.epochTorn, 0u);
    EXPECT_GE(st.requests,
              static_cast<std::uint64_t>(kClients * kRequests));
    EXPECT_GT(st.churnTicks, 0u);
    EXPECT_GT(st.faultDowns, 0u);
}

} // namespace
} // namespace iadm::serve
