/**
 * @file
 * Sharded-simulation equivalence and order-dependence regressions.
 *
 * The tentpole claim of intra-simulation sharding is *byte* equality:
 * an iadm-sweep-v1 report produced at any SimConfig::shards value
 * must equal the serial report bit for bit — same routing decisions,
 * same RNG draw order, same metric totals, same JSON.  The tests
 * here pin that claim against all three golden fixtures (plain,
 * faulted, churned) at 1/2/4/8 shards, and pin the specific
 * order-dependence bugs that sharding flushed out:
 *
 *  - Metrics aggregation must merge commutatively (sums of sums),
 *    never by averaging per-shard averages;
 *  - EventQueue callbacks staged from worker shards must drain in
 *    (shard, staging order), independent of thread scheduling;
 *  - inFlight() accounting must survive park-and-retry packets whose
 *    backward walks cross shard boundaries mid-fault-epoch.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;

#ifndef IADM_TEST_DATA_DIR
#error "IADM_TEST_DATA_DIR must point at tests/data"
#endif

// --- shared grid/fixture definitions ------------------------------
//
// These replicate the frozen grids of golden_sweep_test.cpp and
// churn_test.cpp verbatim (the fixture files are shared); any edit
// there invalidates these copies too.

SweepGrid
plainGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 6}};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = 20260806;
    return grid;
}

/** Transient-blockage storm of the plain fixture (16 down windows). */
void
plainSetup(NetworkSim &s, const SweepCell &cell, Rng &rng)
{
    const topo::IadmTopology topo(cell.netSize);
    for (int k = 0; k < 16; ++k) {
        const auto stage =
            static_cast<unsigned>(rng.uniform(topo.stages()));
        const auto j = static_cast<Label>(rng.uniform(cell.netSize));
        const auto kind = rng.uniform(3);
        const topo::Link link =
            kind == 0   ? topo.straightLink(stage, j)
            : kind == 1 ? topo.plusLink(stage, j)
                        : topo.minusLink(stage, j);
        const Cycle from = 250 + rng.uniform(900);
        const Cycle len = 100 + rng.uniform(200);
        s.scheduleTransientBlockage(link, from, from + len);
    }
}

SweepGrid
faultedGrid()
{
    SweepGrid grid = plainGrid();
    grid.faults = {
        FaultScenario{FaultScenario::Kind::Nonstraight, 4},
        FaultScenario{FaultScenario::Kind::RandomLinks, 6},
        FaultScenario{FaultScenario::Kind::DoubleNonstraight, 2}};
    grid.masterSeed = 20260807;
    return grid;
}

SweepGrid
churnGrid()
{
    SweepGrid grid = plainGrid();
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 4}};
    grid.churns = {ChurnSpec::parse("geometric:500:100").value()};
    grid.measureCycles = 1000;
    grid.masterSeed = 20260807;
    grid.maxPacketAge = 600;
    return grid;
}

/** The scenario grid of tests/scenario_test.cpp, replicated verbatim
 *  (the fixture file is shared).  The bursty and ramp cells advance
 *  per-source gate state in the serial draw phase — exactly the
 *  state the old std::vector<bool> bursty gate would have raced on
 *  under sharding. */
SweepGrid
scenarioGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.3};
    grid.queueCapacities = {4};
    grid.traffics = {
        TrafficSpec::parse("shape:bursty:16:64/dst:hotspot:0:0.2")
            .value(),
        TrafficSpec::parse("dst:adversarial").value(),
        TrafficSpec::parse("dst:mcast:4:8").value(),
        TrafficSpec::parse("shape:ramp:0.2:0.8:500/dst:uniform")
            .value(),
        TrafficSpec::parse("shape:closed:4/dst:uniform").value(),
    };
    grid.replicates = 1;
    grid.warmupCycles = 200;
    grid.measureCycles = 800;
    grid.masterSeed = 20260808;
    return grid;
}

std::string
runAtShards(const SweepGrid &grid, unsigned sim_shards,
            bool with_setup)
{
    SweepOptions opts;
    opts.workers = 2;
    opts.simShards = sim_shards;
    if (with_setup)
        opts.setup = plainSetup;
    return sweepReportJson(grid, runSweep(grid, opts));
}

std::string
readFixture(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "missing fixture " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

struct ShardFixtureCase
{
    const char *name;
    const char *fixture;
    SweepGrid (*grid)();
    bool withSetup;
};

class ShardIdentityP
    : public ::testing::TestWithParam<ShardFixtureCase>
{
};

/**
 * The central acceptance test: the serial (shards=1) report matches
 * the committed fixture bytes, and every sharded report matches the
 * serial one.  A single decision made in the wrong order anywhere —
 * service rank, grant order, RNG draw, metric fold — changes
 * delivered/latency/stall counts and fails the byte compare.
 */
TEST_P(ShardIdentityP, ReportBytesIdenticalAtEveryShardCount)
{
    const ShardFixtureCase &c = GetParam();
    const SweepGrid grid = c.grid();

    const std::string serial = runAtShards(grid, 1, c.withSetup);
    const std::string fixture = readFixture(
        std::string(IADM_TEST_DATA_DIR) + "/" + c.fixture);
    ASSERT_EQ(serial.size(), fixture.size())
        << "serial report diverged from fixture " << c.fixture;
    ASSERT_TRUE(serial == fixture)
        << "serial report diverged from fixture " << c.fixture;

    for (const unsigned shards : {2u, 4u, 8u}) {
        const std::string sharded =
            runAtShards(grid, shards, c.withSetup);
        ASSERT_EQ(sharded.size(), serial.size())
            << "shards=" << shards << " changed the report size";
        EXPECT_TRUE(sharded == serial)
            << "shards=" << shards
            << " produced different report bytes";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, ShardIdentityP,
    ::testing::Values(
        ShardFixtureCase{"plain", "golden_sweep_n64.json", plainGrid,
                         true},
        ShardFixtureCase{"faulted", "golden_sweep_n64_faulted.json",
                         faultedGrid, false},
        ShardFixtureCase{"churn", "golden_sweep_n64_churn.json",
                         churnGrid, false},
        ShardFixtureCase{"scenario",
                         "golden_sweep_scenarios_n64.json",
                         scenarioGrid, false}),
    [](const auto &info) { return info.param.name; });

// --- Metrics: merge must be commutative, not mean-of-means --------

TEST(ShardMetrics, MergeSumsAccumulatorsInsteadOfAveragingAverages)
{
    Metrics a(4, 2);
    Metrics b(4, 2);

    // Shard A: one recovery that waited 10 cycles (avg 10).
    // Shard B: three recoveries that waited 2 each (avg 2).
    a.recordRecovery(10);
    for (int i = 0; i < 3; ++i)
        b.recordRecovery(2);

    // Drop context counters: same reason from different shards, and
    // different stages, must both sum.
    a.recordDropped(0, DropReason::Expired);
    b.recordDropped(0, DropReason::Expired);
    b.recordDropped(1, DropReason::Unroutable);

    // Latency accumulators: sum, exact histogram, and max.
    Packet p{};
    p.injected = 0;
    a.recordDelivered(p, 5);  // latency 5
    b.recordDelivered(p, 11); // latency 11
    b.recordDelivered(p, 3);  // latency 3

    a.merge(b);

    // Naive mean-of-shard-means would report (10 + 2) / 2 = 6; the
    // true pooled average is (10 + 3*2) / 4 = 4.
    EXPECT_EQ(a.recoveries(), 4u);
    EXPECT_DOUBLE_EQ(a.avgRecoveryWait(), 4.0);

    EXPECT_EQ(a.dropped(), 3u);
    EXPECT_EQ(a.droppedFor(DropReason::Expired), 2u);
    EXPECT_EQ(a.droppedFor(DropReason::Unroutable), 1u);
    EXPECT_EQ(a.dropsAt(0), 2u);
    EXPECT_EQ(a.dropsAt(1), 1u);

    EXPECT_EQ(a.delivered(), 3u);
    // Pooled mean (5+11+3)/3, not mean of shard means (5 + 7)/2.
    EXPECT_DOUBLE_EQ(a.avgLatency(), 19.0 / 3.0);
    EXPECT_EQ(a.maxLatency(), 11u);
    EXPECT_EQ(a.latencyHistogram()[5], 1u);
    EXPECT_EQ(a.latencyHistogram()[11], 1u);
    EXPECT_EQ(a.latencyHistogram()[3], 1u);
}

TEST(ShardMetrics, MergeIsCommutative)
{
    const auto build = [](std::uint64_t waits, Cycle lat) {
        Metrics m(4, 2);
        for (std::uint64_t i = 0; i < waits; ++i)
            m.recordRecovery(i + 1);
        Packet p{};
        p.injected = 0;
        m.recordDelivered(p, lat);
        m.recordStall(1);
        return m;
    };
    Metrics ab = build(2, 7);
    ab.merge(build(5, 4));
    Metrics ba = build(5, 4);
    ba.merge(build(2, 7));
    EXPECT_EQ(ab.recoveries(), ba.recoveries());
    EXPECT_DOUBLE_EQ(ab.avgRecoveryWait(), ba.avgRecoveryWait());
    EXPECT_DOUBLE_EQ(ab.avgLatency(), ba.avgLatency());
    EXPECT_EQ(ab.maxLatency(), ba.maxLatency());
    EXPECT_EQ(ab.stallsAt(1), ba.stallsAt(1));
}

// --- EventQueue: staged schedules drain in deterministic order ----

TEST(ShardEvents, StagedCallbacksDrainInShardThenStagingOrder)
{
    EventQueue q;
    q.setShardCount(4);

    std::vector<int> ran;
    const auto mark = [&ran](int tag) {
        return [&ran, tag] { ran.push_back(tag); };
    };

    // Stage from four genuinely concurrent threads (one per shard):
    // the commit order must come out (shard, staging index), no
    // matter how the threads interleave.
    {
        std::vector<std::thread> threads;
        for (unsigned shard = 0; shard < 4; ++shard) {
            threads.emplace_back([&, shard] {
                const int base = static_cast<int>(shard) * 10;
                q.scheduleFromShard(shard, 5, mark(base + 0));
                q.scheduleFromShard(shard, 5, mark(base + 1));
            });
        }
        for (auto &t : threads)
            t.join();
    }
    EXPECT_EQ(q.staged(), 8u);
    q.commitShardSchedules();
    EXPECT_EQ(q.staged(), 0u);
    EXPECT_EQ(q.pending(), 8u);

    q.runUntil(5);
    const std::vector<int> expected = {0, 1, 10, 11, 20, 21, 30, 31};
    EXPECT_EQ(ran, expected);

    // Time still dominates the seq tie-break: a later-committed but
    // earlier-scheduled callback runs first.
    ran.clear();
    q.scheduleFromShard(3, 9, mark(39));
    q.scheduleFromShard(0, 8, mark(8));
    q.commitShardSchedules();
    q.runUntil(9);
    EXPECT_EQ(ran, (std::vector<int>{8, 39}));
}

// --- inFlight accounting across shard boundaries ------------------

SimConfig
dynamicChurnConfig(unsigned shards)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 0.3;
    cfg.queueCapacity = 4;
    cfg.seed = 20260808;
    cfg.maxPacketAge = 120;
    cfg.shards = shards;
    return cfg;
}

/**
 * A simulator whose transient blockages force BACKTRACK rewrites,
 * park-and-retry verdicts and age-outs.  Blockages at stages 1 and 2
 * make the backward walks and retry wakeups cross the row boundary
 * between shards (with 8 shards over 64 rows each shard owns 8
 * rows, so almost every backward hop lands in a foreign shard).
 */
NetworkSim
makeDynamicChurnSim(unsigned shards)
{
    const SimConfig cfg = dynamicChurnConfig(shards);
    NetworkSim s(cfg, TrafficSpec{}.make(cfg.netSize));
    const topo::IadmTopology topo(cfg.netSize);
    Rng rng(7);
    for (int k = 0; k < 24; ++k) {
        const auto stage =
            static_cast<unsigned>(rng.uniform(topo.stages()));
        const auto j = static_cast<Label>(rng.uniform(cfg.netSize));
        const auto kind = rng.uniform(3);
        const topo::Link link =
            kind == 0   ? topo.straightLink(stage, j)
            : kind == 1 ? topo.plusLink(stage, j)
                        : topo.minusLink(stage, j);
        const Cycle from = 20 + rng.uniform(400);
        const Cycle len = 60 + rng.uniform(200);
        s.scheduleTransientBlockage(link, from, from + len);
    }
    return s;
}

/**
 * Conservation regression: injected packets either deliver, drop or
 * stay in flight — at every cycle, under sharding, through fault
 * epochs, backward walks and age-outs.  (Under IADM_SANITIZE builds
 * inFlight() additionally cross-checks the counter against a full
 * queue-arena scan on each call.)
 */
TEST(ShardInFlight, ConservationHoldsEveryCycleUnderChurn)
{
    NetworkSim s = makeDynamicChurnSim(8);
    ASSERT_EQ(s.shards(), 8u);
    for (Cycle c = 0; c < 600; ++c) {
        s.step();
        const Metrics &m = s.metrics();
        ASSERT_EQ(m.injected() - m.delivered() - m.dropped(),
                  s.inFlight())
            << "conservation broke at cycle " << c;
    }
    // The scenario must actually exercise the recovery machinery,
    // or the assertions above prove nothing.
    const Metrics &m = s.metrics();
    EXPECT_GT(m.backtrackHops(), 0u);
    EXPECT_GT(m.dropped(), 0u);
    EXPECT_GT(m.recoveries(), 0u);
}

/**
 * Serial/sharded twin lockstep: the same churn scenario stepped
 * cycle-by-cycle at shards=1 and shards=8 must agree on the live
 * packet count at every cycle and on every headline counter at the
 * end — park-and-retry packets crossing shard boundaries mid-epoch
 * included.
 */
TEST(ShardInFlight, ShardedTwinTracksSerialTwinCycleByCycle)
{
    NetworkSim serial = makeDynamicChurnSim(1);
    NetworkSim sharded = makeDynamicChurnSim(8);
    ASSERT_EQ(serial.shards(), 1u);
    ASSERT_EQ(sharded.shards(), 8u);

    for (Cycle c = 0; c < 600; ++c) {
        serial.step();
        sharded.step();
        ASSERT_EQ(serial.inFlight(), sharded.inFlight())
            << "live packet count diverged at cycle " << c;
    }

    const Metrics &a = serial.metrics();
    const Metrics &b = sharded.metrics();
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_EQ(a.delivered(), b.delivered());
    EXPECT_EQ(a.dropped(), b.dropped());
    EXPECT_EQ(a.droppedFor(DropReason::Expired),
              b.droppedFor(DropReason::Expired));
    EXPECT_EQ(a.droppedFor(DropReason::Unroutable),
              b.droppedFor(DropReason::Unroutable));
    EXPECT_EQ(a.totalStalls(), b.totalStalls());
    EXPECT_EQ(a.totalReroutes(), b.totalReroutes());
    EXPECT_EQ(a.totalHops(), b.totalHops());
    EXPECT_EQ(a.backtrackHops(), b.backtrackHops());
    EXPECT_EQ(a.recoveries(), b.recoveries());
    EXPECT_DOUBLE_EQ(a.avgRecoveryWait(), b.avgRecoveryWait());
    EXPECT_DOUBLE_EQ(a.avgLatency(), b.avgLatency());
    EXPECT_EQ(a.maxLatency(), b.maxLatency());
    EXPECT_EQ(a.latencyHistogram(), b.latencyHistogram());
    EXPECT_EQ(a.routeCacheHits(), b.routeCacheHits());
    EXPECT_EQ(a.routeCacheMisses(), b.routeCacheMisses());
}

} // namespace
} // namespace iadm
