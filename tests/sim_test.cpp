/**
 * @file
 * Packet simulator tests: conservation, delivery correctness,
 * scheme behavior under faults and congestion, transient blockage
 * events and the metrics machinery.
 */

#include <cstdlib>
#include <functional>
#include <new>

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_sim.hpp"
#include "topology/iadm.hpp"

// Global operator new instrumented with a call counter so
// Sim.SteadyStateStepPerformsNoHeapAllocation below can prove the
// flat hot path's no-allocation claim (docs/PERF.md) instead of
// asserting it by inspection.
static std::uint64_t g_heapAllocs = 0;

void *
operator new(std::size_t size)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(size != 0 ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace iadm {
namespace {

using namespace sim;
using topo::IadmTopology;

std::unique_ptr<TrafficPattern>
uniform(Label n)
{
    return std::make_unique<UniformTraffic>(n);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&] { fired.push_back(5); });
    q.schedule(1, [&] { fired.push_back(1); });
    q.schedule(3, [&] { fired.push_back(3); });
    q.runUntil(2);
    EXPECT_EQ(fired, (std::vector<int>{1}));
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreak)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(2, [&] { fired.push_back(1); });
    q.schedule(2, [&] { fired.push_back(2); });
    q.schedule(2, [&] { fired.push_back(3); });
    q.runUntil(2);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CollidingBlockageEventsFireInScheduleOrder)
{
    // Two transient blockages of the same link share cycle 10: the
    // first window clears exactly when the second appears.  The
    // monotonic sequence tie-break must replay them in schedule
    // order (clear, then block) regardless of heap internals, so
    // the link ends cycle 10 blocked — std::priority_queue alone is
    // not stable for equal timestamps.
    IadmTopology topo(16);
    const auto link = topo.plusLink(1, 3);
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.injectionRate = 0.0;
    NetworkSim s(cfg, uniform(16));
    s.scheduleTransientBlockage(link, 5, 10);
    s.scheduleTransientBlockage(link, 10, 20);
    s.run(8);
    EXPECT_TRUE(s.faults().isBlocked(link)); // first window active
    s.run(3); // past cycle 10: clear fired, then re-block
    EXPECT_TRUE(s.faults().isBlocked(link));
    s.run(10); // past cycle 20
    EXPECT_FALSE(s.faults().isBlocked(link));
    EXPECT_TRUE(s.faults().empty());
}

TEST(EventQueue, ManyCollidingCallbacksStayFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 100; ++i)
        q.schedule(7, [&fired, i] { fired.push_back(i); });
    q.schedule(3, [&fired] { fired.push_back(-1); });
    q.runUntil(7);
    ASSERT_EQ(fired.size(), 101u);
    EXPECT_EQ(fired.front(), -1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueue, NextTime)
{
    EventQueue q;
    q.schedule(7, [] {});
    EXPECT_EQ(q.nextTime(), 7u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CallbackSchedulingAtOrBeforeNowFiresInSameCall)
{
    // Reentrancy regression: a callback that schedules another
    // event at a time <= now must fire within the same runUntil
    // call, in time order with FIFO tie-break against events that
    // were already pending.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&] {
        fired.push_back(1);
        q.schedule(5, [&] { fired.push_back(3); });
        q.schedule(4, [&] { fired.push_back(4); });
    });
    q.schedule(5, [&] { fired.push_back(2); });
    q.runUntil(5);
    EXPECT_TRUE(q.empty());
    // The time-4 latecomer outranks the pending time-5 events; the
    // two time-5 events keep schedule order.
    EXPECT_EQ(fired, (std::vector<int>{1, 4, 2, 3}));
}

TEST(EventQueue, ReentrantChainDrainsWithinOneCall)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.schedule(2, chain); // at now: must not be deferred
    };
    q.schedule(2, chain);
    q.runUntil(2);
    EXPECT_EQ(fired, 5);
    EXPECT_TRUE(q.empty());
}

TEST(SwitchQueue, CapacityEnforced)
{
    SwitchQueue q(2);
    EXPECT_TRUE(q.push(Packet{}));
    EXPECT_TRUE(q.push(Packet{}));
    EXPECT_FALSE(q.push(Packet{}));
    EXPECT_TRUE(q.full());
    (void)q.pop();
    EXPECT_FALSE(q.full());
}

TEST(SwitchQueue, FifoOrder)
{
    SwitchQueue q(4);
    for (std::uint64_t i = 0; i < 4; ++i) {
        Packet p;
        p.id = i;
        q.push(p);
    }
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(q.pop().id, i);
}

TEST(Packet, HotStructSizeIsPinned)
{
    // Mirrors the static_assert in packet.hpp: growing the hot
    // struct dilates every slab copy the simulator makes and must
    // be a conscious decision, never a side effect.
    EXPECT_EQ(sizeof(Packet), 96u);
}

TEST(QueueArena, RejectsPushWhenFullWithoutDisturbingNeighbors)
{
    QueueArena a(1, 2, 2);
    const std::size_t q0 = a.qid(0, 0);
    const std::size_t q1 = a.qid(0, 1);
    EXPECT_TRUE(a.push(q0, Packet{}));
    EXPECT_TRUE(a.push(q0, Packet{}));
    EXPECT_TRUE(a.full(q0));
    Packet rejected;
    rejected.id = 7;
    EXPECT_FALSE(a.push(q0, std::move(rejected)));
    EXPECT_EQ(a.size(q0), 2u);
    EXPECT_TRUE(a.push(q1, Packet{})); // neighbor ring unaffected
    EXPECT_EQ(a.size(q1), 1u);
    EXPECT_EQ(a.totalSize(), 3u);
}

TEST(QueueArena, WraparoundSurvivesManyPushPopCycles)
{
    // Far more push/pop cycles than the ring has slots: the
    // free-running head/tail counters must keep indexing the right
    // slot long after they exceed the physical ring size.
    QueueArena a(2, 4, 4);
    const std::size_t q = a.qid(1, 2);
    std::uint64_t next_id = 0;
    std::uint64_t expect_id = 0;
    for (int cycle = 0; cycle < 200; ++cycle) {
        while (a.size(q) < 3) {
            Packet p;
            p.id = next_id++;
            ASSERT_TRUE(a.push(q, std::move(p)));
        }
        while (a.size(q) > 1)
            ASSERT_EQ(a.pop(q).id, expect_id++);
    }
    EXPECT_GT(next_id, 200u); // counters ran well past the ring
}

TEST(QueueArena, FifoPreservedAcrossWrap)
{
    // Keep the ring partially full while draining so head and tail
    // repeatedly cross the physical wrap point; order must hold.
    QueueArena a(1, 1, 3); // 3 logical slots in a 4-slot ring
    std::uint64_t next_id = 0;
    std::uint64_t expect_id = 0;
    for (int round = 0; round < 64; ++round) {
        while (!a.full(0)) {
            Packet p;
            p.id = next_id++;
            ASSERT_TRUE(a.push(0, std::move(p)));
        }
        ASSERT_EQ(a.pop(0).id, expect_id++);
        ASSERT_EQ(a.pop(0).id, expect_id++);
    }
    while (!a.empty(0))
        ASSERT_EQ(a.pop(0).id, expect_id++);
    EXPECT_EQ(next_id, expect_id);
}

TEST(QueueArena, MoveFrontAndDropFrontKeepOrder)
{
    QueueArena a(2, 2, 4);
    const std::size_t src = a.qid(0, 1);
    const std::size_t dst = a.qid(1, 0);
    for (std::uint64_t i = 0; i < 3; ++i) {
        Packet p;
        p.id = i;
        ASSERT_TRUE(a.push(src, std::move(p)));
    }
    a.moveFront(src, dst); // id 0 crosses stages
    a.dropFront(src);      // id 1 discarded in place
    ASSERT_EQ(a.size(dst), 1u);
    EXPECT_EQ(a.front(dst).id, 0u);
    ASSERT_EQ(a.size(src), 1u);
    EXPECT_EQ(a.front(src).id, 2u);
}

TEST(Sim, SteadyStateStepPerformsNoHeapAllocation)
{
    // The flat hot path (docs/PERF.md) must not touch the heap once
    // the network reaches steady state: queues live in the arena
    // slab, link lookups in the precomputed table, paths in the
    // packets.  (The fault-repair BACKTRACK of the dynamic scheme
    // is the documented cold-path exception; without blockages it
    // never runs.)
    for (const auto scheme :
         {RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
          RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
          RoutingScheme::TsdtDynamic}) {
        SimConfig cfg;
        cfg.netSize = 32;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.35;
        NetworkSim s(cfg, uniform(32));
        s.run(200); // fill the queues into steady state
        const std::uint64_t before = g_heapAllocs;
        s.run(100);
        EXPECT_EQ(g_heapAllocs, before)
            << "heap allocation in steady-state step() under "
            << routingSchemeName(scheme);
    }
}

class SchemeP : public ::testing::TestWithParam<RoutingScheme>
{
};

TEST_P(SchemeP, ConservationAndDelivery)
{
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = GetParam();
    cfg.injectionRate = 0.2;
    cfg.seed = 42;
    NetworkSim s(cfg, uniform(16));
    s.run(2000);
    const auto &m = s.metrics();
    EXPECT_GT(m.delivered(), 0u);
    // Conservation: injected == delivered + in flight.
    EXPECT_EQ(m.injected(), m.delivered() + s.inFlight());
    // Latency is at least the pipeline depth (n = 4).
    EXPECT_GE(m.avgLatency(), 4.0);
}

TEST_P(SchemeP, DrainsAfterInjectionStops)
{
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = GetParam();
    cfg.injectionRate = 0.3;
    cfg.seed = 7;
    NetworkSim s(cfg, uniform(16));
    s.run(500);
    // Stop injecting: everything in flight must drain (no fault
    // can hold a packet forever in a fault-free network).
    s.setInjectionRate(0.0);
    s.run(500);
    EXPECT_EQ(s.inFlight(), 0u);
    EXPECT_EQ(s.metrics().injected(), s.metrics().delivered());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeP,
    ::testing::Values(RoutingScheme::SsdtStatic,
                      RoutingScheme::SsdtBalanced,
                      RoutingScheme::TsdtSender,
                      RoutingScheme::DistanceTag,
                      RoutingScheme::TsdtDynamic));

TEST(Sim, DynamicSchemeBacktracksThroughQueues)
{
    // A static straight fault forces in-network backtracking: the
    // dynamic scheme keeps delivering (the pairs that remain
    // connected) and records backward hops.
    IadmTopology topo(16);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(2, 0));
    fs.blockLink(topo.straightLink(1, 5));
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 0.15;
    cfg.seed = 21;
    NetworkSim s(cfg, uniform(16), fs);
    s.run(4000);
    const auto &m = s.metrics();
    EXPECT_GT(m.delivered(), 500u);
    EXPECT_GT(m.backtrackHops(), 0u);
    EXPECT_GT(m.totalReroutes(), 0u);
    // Conservation with drops included.
    EXPECT_EQ(m.injected(),
              m.delivered() + m.dropped() + s.inFlight());
}

TEST(Sim, DynamicSchemeDropsDisconnectedPairs)
{
    // Disconnect 5 -> 5 (straight prefix cut): dynamic packets for
    // that pair are dropped, everything else flows.
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(0, 5));
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 0.3;
    cfg.seed = 22;
    NetworkSim s(cfg, std::make_unique<PermutationTraffic>(
                          perm::Permutation(8)), fs);
    s.run(1000);
    const auto &m = s.metrics();
    EXPECT_GT(m.dropped(), 0u);
    EXPECT_GT(m.delivered(), 0u);
    EXPECT_EQ(m.injected(),
              m.delivered() + m.dropped() + s.inFlight());
}

TEST(Sim, DynamicMatchesSenderUnderStaticFaults)
{
    // With only static faults and low load, the dynamic scheme
    // delivers the same pairs the sender-computed scheme does (both
    // run REROUTE); the dynamic one pays backtrack hops instead of
    // pre-computation.
    IadmTopology topo(16);
    Rng frng(23);
    const auto fs = fault::randomLinkFaults(topo, 8, frng);
    const auto run = [&](RoutingScheme scheme) {
        SimConfig cfg;
        cfg.netSize = 16;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.05;
        cfg.seed = 24;
        NetworkSim s(cfg, uniform(16), fs);
        s.run(6000);
        return s.metrics().delivered() + s.metrics().dropped() +
               s.metrics().unroutable();
    };
    // Identical traffic (same seed/pattern): accounted packets must
    // match across the two schemes.
    EXPECT_EQ(run(RoutingScheme::TsdtDynamic) > 0,
              run(RoutingScheme::TsdtSender) > 0);
}

TEST(Sim, ZeroInjectionStaysEmpty)
{
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.0;
    NetworkSim s(cfg, uniform(8));
    s.run(100);
    EXPECT_EQ(s.metrics().injected(), 0u);
    EXPECT_EQ(s.inFlight(), 0u);
}

TEST(Metrics, ZeroCountAveragesAreZeroNotNan)
{
    // An all-throttled run delivers nothing: every derived average
    // must guard its zero denominator and report 0.0, not NaN/inf.
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.0;
    NetworkSim s(cfg, uniform(8));
    s.run(50);
    const auto &m = s.metrics();
    EXPECT_EQ(m.delivered(), 0u);
    EXPECT_EQ(m.avgLatency(), 0.0);
    EXPECT_EQ(m.latencyPercentile(0.99), 0u);
    EXPECT_EQ(m.throughput(0), 0.0);
    for (unsigned st = 0; st < m.stages(); ++st) {
        EXPECT_EQ(m.nonstraightImbalance(st), 0.0);
        EXPECT_EQ(m.linkUtilization(st, 0), 0.0);
    }
}

TEST(Metrics, FreshMetricsAvgQueueDepthIsZero)
{
    // No samples at all (simulator never stepped): the per-stage
    // queue-depth average divides by the sample count.
    Metrics m(8, 3);
    for (unsigned st = 0; st < 3; ++st)
        EXPECT_EQ(m.avgQueueDepth(st), 0.0);
    EXPECT_EQ(m.avgLatency(), 0.0);
    const std::string text = m.summary(0);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Sim, SingleFlightLatencyIsPipelineDepth)
{
    // With a single packet and empty network, latency = n cycles.
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.injectionRate = 1.0; // inject once then check
    cfg.seed = 3;
    NetworkSim s(cfg, std::make_unique<PermutationTraffic>(
                          perm::Permutation(16)));
    s.step(); // one injection wave
    // stop the flood: run a tiny custom loop by recreating with 0
    // rate is overkill; simply run 4 more cycles and check min
    // latency bound via delivered packets.
    s.run(4);
    EXPECT_GT(s.metrics().delivered(), 0u);
    EXPECT_GE(s.metrics().avgLatency(), 4.0);
    EXPECT_LE(s.metrics().maxLatency(), 16u);
}

TEST(Sim, SsdtRoutesAroundNonstraightFaults)
{
    IadmTopology topo(16);
    fault::FaultSet fs;
    Rng frng(5);
    fs = fault::randomNonstraightFaults(topo, 10, frng);
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::SsdtStatic;
    cfg.injectionRate = 0.1;
    cfg.seed = 11;
    NetworkSim s(cfg, uniform(16), fs);
    s.run(3000);
    EXPECT_GT(s.metrics().delivered(), 500u);
    EXPECT_GT(s.metrics().totalReroutes(), 0u);
    EXPECT_EQ(s.metrics().injected(),
              s.metrics().delivered() + s.inFlight());
}

TEST(Sim, TsdtSenderAvoidsStaticFaultsEntirely)
{
    // Sender-computed REROUTE tags never touch blocked links, so no
    // stalls are caused by the static faults themselves.
    IadmTopology topo(16);
    fault::FaultSet fs;
    Rng frng(6);
    fs = fault::randomLinkFaults(topo, 8, frng);
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.05;
    cfg.seed = 12;
    NetworkSim s(cfg, uniform(16), fs);
    s.run(4000);
    EXPECT_GT(s.metrics().delivered(), 100u);
    EXPECT_EQ(s.metrics().injected(),
              s.metrics().delivered() + s.inFlight());
}

TEST(Sim, UnroutablePairsAreCountedNotInjected)
{
    // Disconnect switch 5's straight path: pairs (5, 5-ish) become
    // unroutable for the TSDT sender and are counted.
    IadmTopology topo(8);
    fault::FaultSet fs;
    for (const auto &l : topo.outLinks(0, 5))
        fs.blockLink(l);
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.5;
    cfg.seed = 13;
    NetworkSim s(cfg, uniform(8), fs);
    s.run(500);
    EXPECT_GT(s.metrics().unroutable(), 0u);
    EXPECT_EQ(s.metrics().injected(),
              s.metrics().delivered() + s.inFlight());
}

TEST(Sim, BalancedSsdtReducesNonstraightImbalance)
{
    // The load-balancing motivation of Section 4: a state-C switch
    // always offers the same nonstraight sign, so static SSDT is
    // fully one-sided (imbalance 1); balancing splits traffic over
    // both signed links whenever queues differ.
    const auto run = [](RoutingScheme scheme) {
        SimConfig cfg;
        cfg.netSize = 16;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.35;
        cfg.queueCapacity = 4;
        cfg.seed = 14;
        NetworkSim s(cfg, std::make_unique<UniformTraffic>(16));
        s.run(4000);
        double total = 0;
        for (unsigned i = 0; i + 1 < 4; ++i)
            total += s.metrics().nonstraightImbalance(i);
        return total;
    };
    const double imbalance_static = run(RoutingScheme::SsdtStatic);
    const double imbalance_bal = run(RoutingScheme::SsdtBalanced);
    EXPECT_LT(imbalance_bal, imbalance_static);
}

TEST(Sim, TransientBlockageCausesReroutesThenRecovers)
{
    IadmTopology topo(16);
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::SsdtStatic;
    cfg.injectionRate = 0.2;
    cfg.seed = 15;
    NetworkSim s(cfg, uniform(16));
    s.scheduleTransientBlockage(topo.plusLink(1, 2), 100, 400);
    s.scheduleTransientBlockage(topo.minusLink(2, 7), 100, 400);
    s.run(1000);
    EXPECT_TRUE(s.faults().empty()); // blockages cleared
    EXPECT_GT(s.metrics().totalReroutes(), 0u);
    EXPECT_EQ(s.metrics().injected(),
              s.metrics().delivered() + s.inFlight());
}

TEST(Sim, CrossbarSwitchesIncreaseThroughputUnderHotspot)
{
    // Gamma-style 3x3 crossbars accept up to three packets per
    // cycle, relieving input contention at the hot switch column.
    const auto run = [](bool crossbar) {
        SimConfig cfg;
        cfg.netSize = 16;
        cfg.scheme = RoutingScheme::SsdtStatic;
        cfg.injectionRate = 0.3;
        cfg.crossbarSwitches = crossbar;
        cfg.seed = 16;
        NetworkSim s(cfg,
                     std::make_unique<HotspotTraffic>(16, 0, 0.4));
        s.run(3000);
        return s.metrics().delivered();
    };
    EXPECT_GE(run(true), run(false));
}

TEST(Sim, BurstyTrafficThrottlesInjectionByDutyCycle)
{
    // With burst length 50 and idle length 150 the duty cycle is
    // 25%: injected packets approach rate * duty * cycles * N.
    const Label n_size = 16;
    auto bursty =
        std::make_unique<BurstyTraffic>(n_size, 50.0, 150.0);
    EXPECT_NEAR(bursty->dutyCycle(), 0.25, 1e-9);
    SimConfig cfg;
    cfg.netSize = n_size;
    cfg.injectionRate = 0.4;
    cfg.seed = 31;
    NetworkSim s(cfg, std::move(bursty));
    const Cycle cycles = 20000;
    s.run(cycles);
    const double expected = 0.4 * 0.25 * cycles * n_size;
    const auto injected = static_cast<double>(
        s.metrics().injected() + s.metrics().throttled());
    EXPECT_NEAR(injected / expected, 1.0, 0.15);
}

TEST(Sim, BurstyBurstsRaiseLatencyVsSmoothAtSameLoad)
{
    // Equal average load, bursty arrivals queue harder.
    const Label n_size = 16;
    const auto run = [&](bool bursty) {
        SimConfig cfg;
        cfg.netSize = n_size;
        cfg.seed = 32;
        std::unique_ptr<TrafficPattern> t;
        if (bursty) {
            cfg.injectionRate = 0.8; // x 0.25 duty = 0.2 average
            t = std::make_unique<BurstyTraffic>(n_size, 40.0,
                                                120.0);
        } else {
            cfg.injectionRate = 0.2;
            t = std::make_unique<UniformTraffic>(n_size);
        }
        NetworkSim s(cfg, std::move(t));
        s.run(20000);
        return s.metrics().avgLatency();
    };
    EXPECT_GT(run(true), run(false));
}

TEST(Sim, MetricsSummaryMentionsKeyFields)
{
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.1;
    NetworkSim s(cfg, uniform(8));
    s.run(200);
    const auto str = s.metrics().summary(200);
    EXPECT_NE(str.find("delivered="), std::string::npos);
    EXPECT_NE(str.find("throughput="), std::string::npos);
}

TEST(Sim, ResetMetricsDropsWarmup)
{
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.2;
    NetworkSim s(cfg, uniform(8));
    s.run(500);
    EXPECT_GT(s.metrics().injected(), 0u);
    s.resetMetrics();
    EXPECT_EQ(s.metrics().injected(), 0u);
    EXPECT_EQ(s.metrics().delivered(), 0u);
    s.run(500);
    EXPECT_GT(s.metrics().delivered(), 0u);
}

TEST(Sim, ThroughputMonotoneInInjectionRateUntilSaturation)
{
    const auto tp = [](double rate) {
        SimConfig cfg;
        cfg.netSize = 16;
        cfg.injectionRate = rate;
        cfg.seed = 17;
        NetworkSim s(cfg, uniform(16));
        s.run(3000);
        return s.metrics().throughput(3000);
    };
    const double low = tp(0.05);
    const double mid = tp(0.15);
    EXPECT_GT(mid, low);
}

TEST(Sim, DeterministicAcrossRuns)
{
    const auto run = [] {
        SimConfig cfg;
        cfg.netSize = 32;
        cfg.scheme = RoutingScheme::SsdtBalanced;
        cfg.injectionRate = 0.35;
        cfg.seed = 777;
        NetworkSim s(cfg,
                     std::make_unique<UniformTraffic>(32));
        s.run(2000);
        return std::tuple{s.metrics().injected(),
                          s.metrics().delivered(),
                          s.metrics().totalStalls(),
                          s.metrics().totalReroutes(),
                          s.metrics().maxLatency()};
    };
    EXPECT_EQ(run(), run());
}

TEST(Sim, SeedChangesTrajectory)
{
    const auto run = [](std::uint64_t seed) {
        SimConfig cfg;
        cfg.netSize = 32;
        cfg.injectionRate = 0.35;
        cfg.seed = seed;
        NetworkSim s(cfg,
                     std::make_unique<UniformTraffic>(32));
        s.run(2000);
        return s.metrics().injected();
    };
    EXPECT_NE(run(1), run(2));
}

TEST(Sim, LinkUtilizationBounded)
{
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.injectionRate = 0.5;
    cfg.seed = 18;
    NetworkSim s(cfg, uniform(16));
    s.run(1000);
    for (unsigned i = 0; i < 4; ++i) {
        const double u = s.metrics().linkUtilization(i, 1000);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 / 3.0 + 1e-9); // <= 1 pkt/switch/cycle
    }
}

} // namespace
} // namespace iadm
