/**
 * @file
 * SSDT scheme tests: delivery under arbitrary states, O(1) local
 * repair of nonstraight blockages (Theorem 3.2), honest failure on
 * straight / double-nonstraight blockages, persistence of repairs,
 * and the load-balancing hook.
 */

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "core/ssdt.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using core::SsdtRouter;
using core::SwitchState;
using topo::IadmTopology;
using topo::LinkKind;

TEST(Ssdt, DeliversEverywhereWithoutFaults)
{
    IadmTopology topo(32);
    SsdtRouter router(topo);
    fault::FaultSet none;
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            const auto res = router.route(s, d, none);
            EXPECT_TRUE(res.delivered);
            EXPECT_EQ(res.path.source(), s);
            EXPECT_EQ(res.path.destination(), d);
            EXPECT_EQ(res.stateFlips, 0u);
            res.path.validate(topo);
        }
    }
}

TEST(Ssdt, RepairsAnySingleNonstraightBlockage)
{
    // The headline SSDT property: any blocked nonstraight link is
    // avoided transparently with O(1) work per blockage.
    IadmTopology topo(16);
    for (const topo::Link &l : topo.allLinks()) {
        if (l.kind == LinkKind::Straight)
            continue;
        fault::FaultSet fs;
        fs.blockLink(l);
        SsdtRouter router(topo);
        for (Label s = 0; s < 16; ++s) {
            for (Label d = 0; d < 16; ++d) {
                const auto res = router.route(s, d, fs);
                EXPECT_TRUE(res.delivered)
                    << "blocked " << l.str() << " s=" << s
                    << " d=" << d;
                EXPECT_FALSE(fs.isBlocked(res.path.linkAt(l.stage)));
            }
        }
    }
}

TEST(Ssdt, RepairsManyNonstraightBlockages)
{
    // One blocked nonstraight link per switch never disconnects a
    // pair; SSDT must deliver through any such pattern.
    IadmTopology topo(32);
    Rng rng(42);
    for (int trial = 0; trial < 30; ++trial) {
        fault::FaultSet fs;
        for (unsigned i = 0; i < topo.stages(); ++i) {
            for (Label j = 0; j < 32; ++j) {
                if (!rng.chance(0.4))
                    continue;
                fs.blockLink(rng.chance(0.5) ? topo.plusLink(i, j)
                                             : topo.minusLink(i, j));
            }
        }
        SsdtRouter router(topo);
        for (Label s = 0; s < 32; ++s) {
            const auto d = static_cast<Label>(rng.uniform(32));
            const auto res = router.route(s, d, fs);
            EXPECT_TRUE(res.delivered);
            EXPECT_TRUE(res.path.isBlockageFree(fs));
        }
    }
}

TEST(Ssdt, FailsOnStraightBlockage)
{
    // Theorem 3.2 "only if": SSDT cannot repair a straight blockage.
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    SsdtRouter router(topo);
    // Path 0 -> 0 uses straight links everywhere.
    const auto res = router.route(0, 0, fs);
    EXPECT_FALSE(res.delivered);
    EXPECT_EQ(res.failedStage, 1);
    EXPECT_EQ(res.failure, fault::BlockageKind::Straight);
}

TEST(Ssdt, FailsOnDoubleNonstraightBlockage)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.plusLink(0, 1));
    fs.blockLink(topo.minusLink(0, 1));
    SsdtRouter router(topo);
    // 1 -> 0 must leave switch 1 on a nonstraight link at stage 0.
    const auto res = router.route(1, 0, fs);
    EXPECT_FALSE(res.delivered);
    EXPECT_EQ(res.failedStage, 0);
    EXPECT_EQ(res.failure, fault::BlockageKind::DoubleNonstraight);
}

TEST(Ssdt, RepairsPersistAcrossMessages)
{
    // A switch that flipped to avoid a fault keeps its new state, so
    // a second identical message needs no flip.
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1)); // state-C link of odd_0 1
    SsdtRouter router(topo);
    const auto first = router.route(1, 0, fs);
    EXPECT_TRUE(first.delivered);
    EXPECT_EQ(first.stateFlips, 1u);
    const auto second = router.route(1, 0, fs);
    EXPECT_TRUE(second.delivered);
    EXPECT_EQ(second.stateFlips, 0u);
    EXPECT_EQ(first.path, second.path);
}

TEST(Ssdt, ResetRestoresInitialState)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1));
    SsdtRouter router(topo);
    (void)router.route(1, 0, fs);
    EXPECT_EQ(router.state().get(0, 1), SwitchState::Cbar);
    router.reset();
    EXPECT_EQ(router.state().get(0, 1), SwitchState::C);
}

TEST(Ssdt, TransparencyPathStillEndsAtDestination)
{
    // Rerouting is transparent to the sender: whatever flips happen,
    // the destination is unchanged (Theorem 3.1).
    IadmTopology topo(64);
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto fs = fault::randomNonstraightFaults(topo, 40, rng);
        SsdtRouter router(topo);
        for (int k = 0; k < 100; ++k) {
            const auto s = static_cast<Label>(rng.uniform(64));
            const auto d = static_cast<Label>(rng.uniform(64));
            const auto res = router.route(s, d, fs);
            if (res.delivered) {
                EXPECT_EQ(res.path.destination(), d);
            }
        }
    }
}

TEST(Ssdt, MatchesOracleOnNonstraightOnlyFaultsSingleHopPairs)
{
    // For pairs whose paths never need straight links in blocked
    // positions, SSDT delivery must agree with BFS reachability when
    // only nonstraight links fail *and* every switch retains a
    // usable nonstraight alternative.
    IadmTopology topo(16);
    Rng rng(11);
    for (int trial = 0; trial < 100; ++trial) {
        // At most one nonstraight blocked per switch.
        fault::FaultSet fs;
        for (unsigned i = 0; i < topo.stages(); ++i)
            for (Label j = 0; j < 16; ++j)
                if (rng.chance(0.3))
                    fs.blockLink(rng.chance(0.5)
                                     ? topo.plusLink(i, j)
                                     : topo.minusLink(i, j));
        SsdtRouter router(topo);
        for (Label s = 0; s < 16; ++s) {
            for (Label d = 0; d < 16; ++d) {
                const auto res = router.route(s, d, fs);
                EXPECT_TRUE(res.delivered);
                EXPECT_TRUE(
                    core::oracleReachable(topo, fs, s, d));
            }
        }
    }
}

TEST(Ssdt, BalancePolicyIsConsulted)
{
    IadmTopology topo(16);
    SsdtRouter router(topo);
    fault::FaultSet none;
    unsigned calls = 0;
    const auto count_only = [&](unsigned, Label, const topo::Link &,
                                const topo::Link &) {
        ++calls;
        return false; // observe, never flip
    };
    auto res = router.route(0, 15, none, count_only);
    EXPECT_TRUE(res.delivered);
    // 0 -> 15 under all-C states uses a nonstraight link at every
    // stage, so the balancer is consulted n = 4 times.
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(res.stateFlips, 0u);

    // A flipping balancer steers onto spare links but still
    // delivers (Theorem 3.1); after the first flip (0 -> 15 via
    // -2^0) the remaining hops are straight, so exactly one call.
    router.reset();
    calls = 0;
    const auto always_flip = [&](unsigned, Label, const topo::Link &,
                                 const topo::Link &) {
        ++calls;
        return true;
    };
    res = router.route(0, 15, none, always_flip);
    EXPECT_TRUE(res.delivered);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(res.stateFlips, 1u);
    EXPECT_EQ(res.path.switchAt(1), 15u);
}

TEST(Ssdt, BalancePolicyNotCalledWhenSpareBlocked)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.plusLink(0, 0)); // spare of even_0 switch 0
    SsdtRouter router(topo);
    unsigned calls = 0;
    const auto policy = [&](unsigned, Label, const topo::Link &,
                            const topo::Link &) {
        ++calls;
        return true;
    };
    // 0 -> 1 needs a nonstraight hop at stage 0 from switch 0; its
    // state-C link is +1 which is blocked, so it must flip without
    // consulting the balancer.
    const auto res = router.route(0, 1, fs, policy);
    EXPECT_TRUE(res.delivered);
    EXPECT_EQ(res.path.kindAt(0), LinkKind::Minus);
}

} // namespace
} // namespace iadm
