/**
 * @file
 * Tests of the Section 2 state model: the delta functions, Lemma
 * 2.1, Theorem 3.1 (destination tags valid in any network state) and
 * Theorem 3.2 (state changes matter iff a nonstraight link is used).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/state_model.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using core::NetworkState;
using core::SwitchState;

TEST(StateModel, DeltaCMatchesPaperTable)
{
    // Paper, Section 2 (N = 8, so offsets are +-2^i).
    // even_i switch, t=0 -> 0; odd_i, t=1 -> 0;
    // odd_i, t=0 -> -2^i; even_i, t=1 -> +2^i.
    for (unsigned i = 0; i < 3; ++i) {
        for (Label j = 0; j < 8; ++j) {
            const bool odd = bit(j, i) == 1;
            EXPECT_EQ(core::deltaC(j, odd ? 1 : 0, i), 0);
            EXPECT_EQ(core::deltaC(j, odd ? 0 : 1, i),
                      odd ? -(1 << i) : (1 << i));
        }
    }
}

TEST(StateModel, DeltaCbarIsNegatedDeltaC)
{
    for (unsigned i = 0; i < 5; ++i)
        for (Label j = 0; j < 32; ++j)
            for (unsigned t = 0; t < 2; ++t)
                EXPECT_EQ(core::deltaCbar(j, t, i),
                          -core::deltaC(j, t, i));
}

TEST(StateModel, Lemma21_CSetsBitIWithoutCarry)
{
    // Lemma 2.1: C_i(j,t) = j_{0/i-1} t j_{i+1/n-1}.
    const Label n_size = 64;
    for (unsigned i = 0; i < 6; ++i) {
        for (Label j = 0; j < n_size; ++j) {
            for (unsigned t = 0; t < 2; ++t) {
                const Label c = core::applyC(j, t, i, n_size);
                EXPECT_EQ(c, static_cast<Label>(withBit(j, i, t)));
            }
        }
    }
}

TEST(StateModel, Lemma21_CbarSetsBitIKeepsLowBits)
{
    // Cbar_i(j,t) = j_{0/i-1} t q_{i+1/n-1} for some q: bit i equals
    // t and bits below i are untouched; higher bits may change.
    const Label n_size = 64;
    for (unsigned i = 0; i < 6; ++i) {
        for (Label j = 0; j < n_size; ++j) {
            for (unsigned t = 0; t < 2; ++t) {
                const Label c = core::applyCbar(j, t, i, n_size);
                EXPECT_EQ(bit(c, i), t);
                EXPECT_EQ(c & lowMask(i), j & lowMask(i));
            }
        }
    }
}

TEST(StateModel, CAndCbarAgreeExactlyOnStraight)
{
    // Theorem 3.2's kernel: deltaC == 0 iff deltaCbar == 0, and
    // otherwise the two deltas are the two opposite nonstraight
    // offsets.
    for (unsigned i = 0; i < 5; ++i) {
        for (Label j = 0; j < 32; ++j) {
            for (unsigned t = 0; t < 2; ++t) {
                const auto dc = core::deltaC(j, t, i);
                const auto db = core::deltaCbar(j, t, i);
                if (dc == 0)
                    EXPECT_EQ(db, 0);
                else
                    EXPECT_EQ(db, -dc);
            }
        }
    }
}

TEST(StateModel, LastStageCEqualsCbarModN)
{
    // +2^{n-1} == -2^{n-1} mod N: the state of a stage n-1 switch is
    // irrelevant (Section 6).
    const Label n_size = 32;
    const unsigned last = 4;
    for (Label j = 0; j < n_size; ++j)
        for (unsigned t = 0; t < 2; ++t)
            EXPECT_EQ(core::applyC(j, t, last, n_size),
                      core::applyCbar(j, t, last, n_size));
}

TEST(StateModel, LinkKindForMatchesDelta)
{
    for (unsigned i = 0; i < 4; ++i) {
        for (Label j = 0; j < 16; ++j) {
            for (unsigned t = 0; t < 2; ++t) {
                for (auto st :
                     {SwitchState::C, SwitchState::Cbar}) {
                    const auto d = core::deltaFor(j, t, i, st);
                    const auto k = core::linkKindFor(j, t, i, st);
                    if (d == 0)
                        EXPECT_EQ(k, topo::LinkKind::Straight);
                    else if (d > 0)
                        EXPECT_EQ(k, topo::LinkKind::Plus);
                    else
                        EXPECT_EQ(k, topo::LinkKind::Minus);
                }
            }
        }
    }
}

class Theorem31P : public ::testing::TestWithParam<Label>
{
};

TEST_P(Theorem31P, DestinationTagValidInAnyState)
{
    // Theorem 3.1: with tag t = d, the message reaches d regardless
    // of the network state.  Randomize states heavily.
    const Label n_size = GetParam();
    Rng rng(0xabcdef + n_size);
    NetworkState state(n_size);
    for (int trial = 0; trial < 60; ++trial) {
        for (unsigned i = 0; i < state.stages(); ++i)
            for (Label j = 0; j < n_size; ++j)
                state.set(i, j,
                          rng.chance(0.5) ? SwitchState::C
                                          : SwitchState::Cbar);
        for (Label s = 0; s < n_size; ++s) {
            const Label d = static_cast<Label>(rng.uniform(n_size));
            const auto sw = state.trace(s, d);
            EXPECT_EQ(sw.back(), d);
        }
    }
}

TEST_P(Theorem31P, TagUniqueness)
{
    // Theorem 3.1 also proves uniqueness: any tag f routes to f, so
    // no tag other than d can reach d.
    const Label n_size = GetParam();
    Rng rng(99 + n_size);
    NetworkState state(n_size);
    for (unsigned i = 0; i < state.stages(); ++i)
        for (Label j = 0; j < n_size; ++j)
            state.set(i, j,
                      rng.chance(0.5) ? SwitchState::C
                                      : SwitchState::Cbar);
    for (Label s = 0; s < n_size; ++s)
        for (Label f = 0; f < n_size; ++f)
            EXPECT_EQ(state.trace(s, f).back(), f);
}

TEST_P(Theorem31P, AllCStateEmulatesICube)
{
    // With every switch in state C the IADM behaves as an ICube:
    // the stage-i switch on the path is d_{0/i-1} s_{i/n-1}.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    NetworkState state(n_size, SwitchState::C);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            const auto sw = state.trace(s, d);
            for (unsigned i = 0; i <= n; ++i) {
                const Label expect = static_cast<Label>(
                    (d & lowMask(i)) | (s & ~lowMask(i) & (n_size - 1)));
                EXPECT_EQ(sw[i], expect);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem31P,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(Theorem32, StateChangeMattersIffNonstraight)
{
    // Flip one switch's state: the path changes iff that switch used
    // a nonstraight link, and then the opposite nonstraight link is
    // used instead.
    const Label n_size = 16;
    Rng rng(123);
    for (int trial = 0; trial < 500; ++trial) {
        NetworkState state(n_size);
        for (unsigned i = 0; i < state.stages(); ++i)
            for (Label j = 0; j < n_size; ++j)
                state.set(i, j,
                          rng.chance(0.5) ? SwitchState::C
                                          : SwitchState::Cbar);
        const Label s = static_cast<Label>(rng.uniform(n_size));
        const Label d = static_cast<Label>(rng.uniform(n_size));
        const auto before = state.trace(s, d);

        const unsigned i =
            static_cast<unsigned>(rng.uniform(state.stages()));
        const Label j = before[i]; // a switch ON the path
        const auto delta_before = core::deltaFor(
            j, bit(d, i), i, state.get(i, j));
        state.flip(i, j);
        const auto after = state.trace(s, d);

        if (delta_before == 0) {
            EXPECT_EQ(before, after);
        } else {
            EXPECT_EQ(after[i + 1],
                      modAdd(j, -delta_before, n_size));
            // Prefixes agree.
            for (unsigned k = 0; k <= i; ++k)
                EXPECT_EQ(before[k], after[k]);
        }
    }
}

TEST(NetworkState, FillAndStr)
{
    NetworkState st(4);
    EXPECT_EQ(st.get(0, 0), SwitchState::C);
    st.fill(SwitchState::Cbar);
    EXPECT_EQ(st.get(1, 3), SwitchState::Cbar);
    EXPECT_NE(st.str().find("S0:"), std::string::npos);
}

} // namespace
} // namespace iadm
