/**
 * @file
 * Cube subgraph tests (Section 6): Figure 8's relabeled subgraph,
 * subgraph routing, the Theorem 6.1 counting argument (constructive
 * family distinctness + exhaustive census for N=4), and fault
 * reconfiguration.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/modmath.hpp"
#include "fault/injection.hpp"
#include "subgraph/cube_subgraph.hpp"
#include "subgraph/enumeration.hpp"
#include "subgraph/reconfigure.hpp"
#include "topology/icube.hpp"

namespace iadm {
namespace {

using subgraph::CubeSubgraph;
using subgraph::StateSubgraph;
using topo::IadmTopology;
using topo::ICubeTopology;
using topo::LinkKind;

TEST(CubeSubgraph, OffsetZeroIsTheICube)
{
    // The x = 0, all-Plus subgraph is exactly the canonical ICube
    // subgraph of Figure 2 up to the last stage's sign choice.
    IadmTopology iadm(8);
    ICubeTopology cube(8);
    const CubeSubgraph g(iadm, 0);
    for (unsigned i = 0; i < iadm.stages(); ++i) {
        for (Label j = 0; j < 8; ++j) {
            const auto cube_link = cube.cubeLink(i, j);
            if (i + 1 < iadm.stages()) {
                EXPECT_EQ(g.activeNonstraight(i, j), cube_link);
            } else {
                // Same endpoints; sign fixed to Plus by the mask.
                EXPECT_EQ(g.activeNonstraight(i, j).to,
                          cube_link.to);
            }
        }
    }
}

TEST(CubeSubgraph, Figure8RelabelingByOne)
{
    // Figure 8: every physical switch j acts as logical j+1; e.g.
    // physical switch 0 at stage 0 (logical 1, odd_0) activates its
    // -2^0 link, i.e. behaves as if in state Cbar physically.
    IadmTopology iadm(8);
    const CubeSubgraph g(iadm, 1);
    EXPECT_EQ(g.logicalLabel(7), 0u);
    EXPECT_EQ(g.activeNonstraight(0, 0).kind, LinkKind::Minus);
    EXPECT_EQ(g.activeNonstraight(0, 1).kind, LinkKind::Plus);
    // Stage 1: logical label of physical 1 is 2 (bit 1 = 1): Minus.
    EXPECT_EQ(g.activeNonstraight(1, 1).kind, LinkKind::Minus);
}

class SubgraphRouteP : public ::testing::TestWithParam<Label>
{
};

TEST_P(SubgraphRouteP, RoutesAllPairsInsideTheSubgraph)
{
    const Label n_size = GetParam();
    IadmTopology iadm(n_size);
    for (Label x = 0; x < n_size; ++x) {
        const CubeSubgraph g(iadm, x);
        for (Label s = 0; s < n_size; ++s) {
            for (Label d = 0; d < n_size; ++d) {
                const auto p = g.route(s, d);
                EXPECT_EQ(p.destination(), d);
                p.validate(iadm);
                for (const topo::Link &l : p.links())
                    EXPECT_TRUE(g.contains(l)) << l.str();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubgraphRouteP,
                         ::testing::Values(4, 8, 16, 32));

TEST(CubeSubgraph, IsomorphismToICubeViaRelabelMap)
{
    // The isomorphism maps logical ICube switch v to physical
    // switch v - x at every column: every ICube link must land on
    // an active subgraph link.
    const Label n_size = 16;
    IadmTopology iadm(n_size);
    ICubeTopology cube(n_size);
    for (Label x = 0; x < n_size; ++x) {
        const CubeSubgraph g(iadm, x);
        for (unsigned i = 0; i < iadm.stages(); ++i) {
            for (Label v = 0; v < n_size; ++v) {
                const Label pj = modSub(v, x, n_size);
                for (const topo::Link &cl : cube.outLinks(i, v)) {
                    const Label pt = modSub(cl.to, x, n_size);
                    // The subgraph must contain a link pj -> pt.
                    bool found = false;
                    for (const topo::Link &al :
                         g.activeLinks(i, pj))
                        found |= (al.to == pt);
                    EXPECT_TRUE(found)
                        << "x=" << x << " stage=" << i
                        << " logical " << v << "->" << cl.to;
                }
            }
        }
    }
}

TEST(CubeSubgraph, EveryMemberPassesGenericIsoCheck)
{
    IadmTopology iadm(8);
    for (Label x = 0; x < 8; ++x) {
        const auto g =
            StateSubgraph::fromCube(CubeSubgraph(iadm, x));
        EXPECT_TRUE(subgraph::isIsomorphicToICube(g)) << "x=" << x;
    }
}

TEST(GenericIso, RejectsNonInvolutionSubgraph)
{
    // All-Plus signs at stage 0 form an N-cycle, not pairings: not
    // a cube subgraph.
    StateSubgraph g;
    g.size = 8;
    g.stages = 3;
    g.minus.assign(24, false); // every switch activates +2^i
    EXPECT_FALSE(subgraph::isIsomorphicToICube(g));
}

TEST(GenericIso, AcceptsHandBuiltButterfly)
{
    // Signs chosen per physical parity (the x = 0 relabeling built
    // by hand): +2^i from even_i, -2^i from odd_i.
    StateSubgraph g;
    g.size = 8;
    g.stages = 3;
    g.minus.assign(24, false);
    for (unsigned i = 0; i < 3; ++i)
        for (Label j = 0; j < 8; ++j)
            g.minus[i * 8 + j] = bit(j, i) == 1;
    EXPECT_TRUE(subgraph::isIsomorphicToICube(g));
}

TEST(Theorem61, PrefixFamiliesCollapseToHalfN)
{
    // Offsets x and x + N/2 generate the same stages-0..n-2 links;
    // exactly N/2 distinct prefix families exist.
    for (Label n_size : {4u, 8u, 16u, 32u}) {
        IadmTopology iadm(n_size);
        EXPECT_EQ(subgraph::countDistinctPrefixFamilies(iadm),
                  n_size / 2)
            << "N=" << n_size;
    }
}

TEST(Theorem61, OffsetAndOffsetPlusHalfNCoincideOnPrefix)
{
    IadmTopology iadm(16);
    for (Label x = 0; x < 8; ++x) {
        const CubeSubgraph a(iadm, x);
        const CubeSubgraph b(iadm, x + 8);
        EXPECT_EQ(a.prefixLinkKeys(), b.prefixLinkKeys());
        // But they are distinguishable nowhere: the full link sets
        // (with equal last-stage masks) coincide too -- the
        // distinctness budget at the last stage comes from the
        // 2^N sign masks, not from x.
        EXPECT_EQ(a.linkKeys(), b.linkKeys());
    }
}

TEST(Theorem61, LastStageMasksAreDistinct)
{
    IadmTopology iadm(8);
    std::set<std::set<std::uint64_t>> sets;
    for (std::uint64_t mask = 0; mask < 256; ++mask)
        sets.insert(CubeSubgraph(iadm, 0, mask).linkKeys());
    EXPECT_EQ(sets.size(), 256u);
}

TEST(Theorem61, ConstructiveFamilyMeetsLowerBound)
{
    // N/2 prefix families x 2^N last-stage masks, pairwise
    // distinct: at least N/2 * 2^N distinct cube subgraphs (counted
    // without materializing all of them for larger N).
    IadmTopology iadm(8);
    std::set<std::set<std::uint64_t>> sets;
    for (Label x = 0; x < 4; ++x)
        for (std::uint64_t mask = 0; mask < 256; ++mask)
            sets.insert(CubeSubgraph(iadm, x, mask).linkKeys());
    EXPECT_EQ(sets.size(), 4u * 256u);
}

TEST(Theorem61, ExhaustiveCensusN4)
{
    // For N = 4 the bound is tight: exactly N/2 * 2^N = 32 state
    // subgraphs are isomorphic to the ICube.
    IadmTopology iadm(4);
    const auto census = subgraph::exhaustiveCensus(iadm);
    EXPECT_EQ(census.stateSubgraphsPrefix, 16u);
    EXPECT_EQ(census.involutionValid, 2u);
    EXPECT_EQ(census.isoToICube, 2u);
    EXPECT_EQ(census.totalWithLastStage, 32u);
    EXPECT_EQ(census.paperLowerBound, 32u);
}

TEST(Theorem61, ExhaustiveCensusN8BoundIsTight)
{
    // Empirical strengthening of Theorem 6.1 (see EXPERIMENTS.md):
    // for N = 8 the lower bound is *exact*.  Of the 2^16 sign
    // assignments, 8 satisfy the per-stage pairing (involution)
    // necessary condition — 2 stage-0 pairings x 4 stage-1
    // pairings — but only the 4 relabeling-generated combinations
    // are isomorphic to the ICube: the "crossed" pairings induce a
    // 4-cycle on stage-0 pair blocks that cannot map onto the
    // butterfly's two disjoint pair-block edges.
    IadmTopology iadm(8);
    const auto census = subgraph::exhaustiveCensus(iadm);
    EXPECT_EQ(census.paperLowerBound, 4u * 256u);
    EXPECT_EQ(census.involutionValid, 8u);
    EXPECT_EQ(census.isoToICube, 4u);
    EXPECT_EQ(census.totalWithLastStage, census.paperLowerBound);
}

TEST(Theorem61, InvolutionAssignmentCountClosedForm)
{
    // Stage i contributes 2^i cycles with 2 matchings each:
    // 2^{2^{n-1}-1} involution-valid assignments in total.
    for (Label n_size : {4u, 8u, 16u}) {
        IadmTopology iadm(n_size);
        const auto all = subgraph::involutionAssignments(iadm);
        const unsigned n = iadm.stages();
        EXPECT_EQ(all.size(),
                  std::size_t{1} << ((1u << (n - 1)) - 1))
            << "N=" << n_size;
        // Spot-check the involution property.
        for (const auto &g : all)
            for (unsigned i = 0; i + 1 < g.stages; ++i)
                for (Label j = 0; j < g.size; ++j)
                    EXPECT_EQ(g.nonstraightTarget(
                                  i, g.nonstraightTarget(i, j)),
                              j);
    }
}

TEST(Theorem61, SmartCensusN32BoundRemainsTight)
{
    // 2^15 involution-valid assignments at N=32; the blockwise
    // filter leaves exactly the N/2 = 16 relabeling families.
    IadmTopology iadm(32);
    const auto c = subgraph::smartCensus(iadm);
    EXPECT_EQ(c.involutionValid, 32768u);
    EXPECT_EQ(c.blockwiseValid, 16u);
    EXPECT_EQ(c.familyMembers, 16u);
    EXPECT_EQ(c.nonFamilyIso, 0u);
    EXPECT_EQ(c.totalWithLastStage, c.paperLowerBound);
}

TEST(Theorem61, BlockwiseFilterAcceptsFamilyMembers)
{
    IadmTopology iadm(16);
    for (Label x = 0; x < 16; ++x) {
        const auto g = subgraph::StateSubgraph::fromCube(
            subgraph::CubeSubgraph(iadm, x));
        EXPECT_TRUE(subgraph::blockwiseButterflyCompatible(g))
            << "x=" << x;
    }
}

TEST(Theorem61, SmartCensusMatchesExhaustiveAtN8)
{
    IadmTopology iadm(8);
    const auto exhaustive = subgraph::exhaustiveCensus(iadm);
    const auto smart = subgraph::smartCensus(iadm);
    EXPECT_EQ(smart.involutionValid, exhaustive.involutionValid);
    EXPECT_EQ(smart.isoToICube, exhaustive.isoToICube);
    EXPECT_EQ(smart.totalWithLastStage,
              exhaustive.totalWithLastStage);
    EXPECT_EQ(smart.nonFamilyIso, 0u);
}

TEST(Theorem61, SmartCensusN16BoundRemainsTight)
{
    // Beyond-the-paper finding extended to N=16: of the 128
    // involution-valid assignments only the N/2 = 8 relabeling
    // families are ICube-isomorphic, so the Theorem 6.1 bound is
    // exact there too.
    IadmTopology iadm(16);
    const auto c = subgraph::smartCensus(iadm);
    EXPECT_EQ(c.involutionValid, 128u);
    EXPECT_EQ(c.familyMembers, 8u);
    EXPECT_EQ(c.nonFamilyIso, 0u);
    EXPECT_EQ(c.isoToICube, 8u);
    EXPECT_EQ(c.totalWithLastStage, c.paperLowerBound);
}

TEST(Reconfigure, FindsFaultFreeSubgraph)
{
    IadmTopology iadm(16);
    Rng rng(4);
    unsigned found = 0;
    for (int trial = 0; trial < 100; ++trial) {
        const auto fs =
            fault::randomNonstraightFaults(iadm, 3, rng);
        const auto g = subgraph::reconfigureAroundFaults(iadm, fs);
        if (!g)
            continue;
        ++found;
        for (unsigned i = 0; i < iadm.stages(); ++i)
            for (Label j = 0; j < 16; ++j) {
                EXPECT_FALSE(
                    fs.isBlocked(g->activeNonstraight(i, j)));
                EXPECT_FALSE(
                    fs.isBlocked(iadm.straightLink(i, j)));
            }
    }
    EXPECT_GT(found, 50u); // most 3-fault patterns are repairable
}

TEST(Reconfigure, SingleNonstraightFaultAlwaysRepairable)
{
    // One nonstraight fault leaves at least half the offsets
    // viable.
    IadmTopology iadm(8);
    for (const topo::Link &l : iadm.allLinks()) {
        if (l.kind == LinkKind::Straight)
            continue;
        fault::FaultSet fs;
        fs.blockLink(l);
        const auto g = subgraph::reconfigureAroundFaults(iadm, fs);
        ASSERT_TRUE(g.has_value()) << l.str();
        EXPECT_FALSE(fs.isBlocked(
            g->activeNonstraight(l.stage, l.from)));
    }
}

TEST(Reconfigure, StraightFaultIsFatal)
{
    // Every cube subgraph contains all straight links.
    IadmTopology iadm(8);
    fault::FaultSet fs;
    fs.blockLink(iadm.straightLink(1, 3));
    EXPECT_FALSE(
        subgraph::reconfigureAroundFaults(iadm, fs).has_value());
    EXPECT_TRUE(subgraph::viableOffsets(iadm, fs).empty());
}

TEST(Reconfigure, ViableOffsetsShrinkWithFaults)
{
    IadmTopology iadm(16);
    Rng rng(9);
    fault::FaultSet fs;
    std::size_t prev = subgraph::viableOffsets(iadm, fs).size();
    EXPECT_EQ(prev, 16u);
    for (int k = 0; k < 6; ++k) {
        const auto extra =
            fault::randomNonstraightFaults(iadm, 2, rng);
        // Merge the new faults into the accumulated set.
        for (unsigned i = 0; i < iadm.stages(); ++i)
            for (Label j = 0; j < 16; ++j)
                for (const auto &l : iadm.outLinks(i, j))
                    if (extra.isBlocked(l))
                        fs.blockLink(l);
        const std::size_t cur =
            subgraph::viableOffsets(iadm, fs).size();
        EXPECT_LE(cur, prev);
        prev = cur;
    }
}

} // namespace
} // namespace iadm
