/**
 * @file
 * Sweep-runner tests: seed derivation, grid geometry, JSON writer
 * determinism, and — the load-bearing guarantee — byte-identical
 * reports regardless of worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <tuple>

#include "common/json_writer.hpp"
#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;

// --- JSON writer ---------------------------------------------------

TEST(JsonWriter, NestedDocument)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("name");
    w.value("sweep");
    w.key("values");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(2.5);
    w.value(true);
    w.endArray();
    w.key("empty");
    w.beginObject();
    w.endObject();
    w.endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(os.str(), "{\n  \"name\": \"sweep\",\n"
                        "  \"values\": [\n    1,\n    2.5,\n"
                        "    true\n  ],\n  \"empty\": {}\n}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.value(std::string_view("a\"b\\c\nd\te\x01"));
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, NumbersRoundTripShortest)
{
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(2.0), "2");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), "0.3333333333333333");
}

// --- seed derivation ----------------------------------------------

TEST(Sweep, DerivedSeedsAreStable)
{
    // Frozen values: the derivation is part of the report contract
    // (docs/SWEEP.md); changing it silently would invalidate every
    // archived sweep.
    EXPECT_EQ(deriveSeed(1, 0, 0), deriveSeed(1, 0, 0));
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 0, 1));
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 1, 0));
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(2, 0, 0));
}

TEST(Sweep, DerivedSeedsHaveNoPairwiseCollisionsOnSmallGrids)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t cell = 0; cell < 64; ++cell)
        for (std::uint64_t rep = 0; rep < 16; ++rep)
            seen.insert(deriveSeed(99, cell, rep));
    EXPECT_EQ(seen.size(), 64u * 16u);
}

// --- grid geometry -------------------------------------------------

SweepGrid
smallGrid()
{
    SweepGrid g;
    g.netSizes = {8, 16};
    g.schemes = {RoutingScheme::SsdtStatic,
                 RoutingScheme::TsdtSender};
    g.injectionRates = {0.1, 0.3};
    g.queueCapacities = {4};
    g.faults = {FaultScenario{},
                FaultScenario{FaultScenario::Kind::Nonstraight, 3}};
    g.replicates = 2;
    g.warmupCycles = 20;
    g.measureCycles = 150;
    g.masterSeed = 7;
    return g;
}

TEST(Sweep, CellCountIsAxisProduct)
{
    const auto g = smallGrid();
    EXPECT_EQ(g.cellCount(), 2u * 2u * 2u * 2u);
    EXPECT_EQ(g.runCount(), g.cellCount() * 2);
}

TEST(Sweep, ResolveCellCoversEveryCombinationExactlyOnce)
{
    const auto g = smallGrid();
    std::set<std::tuple<Label, int, double, std::size_t,
                        std::string>>
        seen;
    for (std::size_t i = 0; i < g.cellCount(); ++i) {
        const auto c = resolveCell(g, i);
        EXPECT_EQ(c.cellIndex, i);
        seen.insert({c.netSize, static_cast<int>(c.scheme),
                     c.injectionRate, c.queueCapacity,
                     c.fault.name()});
    }
    EXPECT_EQ(seen.size(), g.cellCount());
}

// --- spec parsing --------------------------------------------------

TEST(Sweep, FaultScenarioParseRoundTrips)
{
    for (const std::string spec :
         {"none", "links:4", "nonstraight:3", "double:2",
          "switches:1"}) {
        const auto f = FaultScenario::parse(spec);
        ASSERT_TRUE(f.has_value()) << spec;
        EXPECT_EQ(f->name(), spec);
    }
    EXPECT_FALSE(FaultScenario::parse("links").has_value());
    EXPECT_FALSE(FaultScenario::parse("links:x").has_value());
    EXPECT_FALSE(FaultScenario::parse("bogus:1").has_value());
    EXPECT_FALSE(FaultScenario::parse("none:1").has_value());
}

TEST(Sweep, TrafficSpecParseRoundTrips)
{
    for (const std::string spec :
         {"uniform", "bitrev", "transpose", "hotspot:0:0.2"}) {
        const auto t = TrafficSpec::parse(spec);
        ASSERT_TRUE(t.has_value()) << spec;
        EXPECT_EQ(t->name(), spec);
    }
    EXPECT_FALSE(TrafficSpec::parse("lava").has_value());
    EXPECT_FALSE(TrafficSpec::parse("hotspot:a").has_value());
}

// --- determinism ---------------------------------------------------

TEST(Sweep, ReportIsByteIdenticalAcrossWorkerCounts)
{
    // The acceptance guarantee: a sweep's JSON depends only on the
    // grid, never on thread count or OS scheduling.
    const auto g = smallGrid();
    const auto json_for = [&](unsigned workers) {
        SweepOptions opts;
        opts.workers = workers;
        return sweepReportJson(g, runSweep(g, opts));
    };
    const std::string one = json_for(1);
    EXPECT_EQ(one, json_for(4));
    EXPECT_EQ(one, json_for(8));
}

TEST(Sweep, RepeatedRunsAreByteIdentical)
{
    const auto g = smallGrid();
    SweepOptions opts;
    opts.workers = 3;
    const auto a = sweepReportJson(g, runSweep(g, opts));
    const auto b = sweepReportJson(g, runSweep(g, opts));
    EXPECT_EQ(a, b);
}

TEST(Sweep, SetupHookStaysDeterministicAcrossWorkerCounts)
{
    SweepGrid g;
    g.netSizes = {16};
    g.schemes = {RoutingScheme::SsdtStatic};
    g.injectionRates = {0.2, 0.3};
    g.measureCycles = 400;
    g.masterSeed = 11;
    const auto json_for = [&](unsigned workers) {
        SweepOptions opts;
        opts.workers = workers;
        opts.setup = [](NetworkSim &s, const SweepCell &cell,
                        Rng &rng) {
            const topo::IadmTopology topo(cell.netSize);
            for (int k = 0; k < 8; ++k) {
                const auto stage = static_cast<unsigned>(
                    rng.uniform(topo.stages()));
                const auto j =
                    static_cast<Label>(rng.uniform(cell.netSize));
                const auto from = 10 + rng.uniform(100);
                s.scheduleTransientBlockage(
                    topo.plusLink(stage, j), from, from + 40);
            }
        };
        return sweepReportJson(g, runSweep(g, opts));
    };
    EXPECT_EQ(json_for(1), json_for(4));
}

TEST(Sweep, FixedSeedSimReproducesExactCounts)
{
    // Two invocations of the simulator itself with one fixed seed:
    // delivered/dropped must match exactly (the per-run half of the
    // determinism contract).
    const auto counts = [] {
        SimConfig cfg;
        cfg.netSize = 16;
        cfg.scheme = RoutingScheme::TsdtDynamic;
        cfg.injectionRate = 0.3;
        cfg.seed = deriveSeed(5, 3, 1);
        NetworkSim s(cfg,
                     std::make_unique<UniformTraffic>(16),
                     fault::FaultSet{});
        s.run(1500);
        return std::pair{s.metrics().delivered(),
                         s.metrics().dropped()};
    };
    EXPECT_EQ(counts(), counts());
}

// --- runner mechanics ----------------------------------------------

TEST(Sweep, ResultsArriveInCellOrderWithAllReplicates)
{
    const auto g = smallGrid();
    SweepOptions opts;
    opts.workers = 4;
    const auto results = runSweep(g, opts);
    ASSERT_EQ(results.size(), g.cellCount());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].cell.cellIndex, i);
        ASSERT_EQ(results[i].replicates.size(), g.replicates);
        for (unsigned r = 0; r < g.replicates; ++r)
            EXPECT_EQ(results[i].replicates[r].seed,
                      deriveSeed(g.masterSeed, i, r));
    }
}

TEST(Sweep, CollectorReportsEachCellExactlyOnce)
{
    const auto g = smallGrid();
    std::atomic<std::size_t> calls{0};
    std::vector<bool> seen(g.cellCount(), false);
    SweepOptions opts;
    opts.workers = 4;
    opts.onCellDone = [&](const CellResult &r, std::size_t done,
                          std::size_t total) {
        // Called under the collector mutex: no two callbacks race.
        ++calls;
        EXPECT_EQ(total, g.cellCount());
        EXPECT_GE(done, 1u);
        EXPECT_LE(done, total);
        EXPECT_FALSE(seen[r.cell.cellIndex]);
        seen[r.cell.cellIndex] = true;
        EXPECT_EQ(r.replicates.size(), g.replicates);
    };
    (void)runSweep(g, opts);
    EXPECT_EQ(calls.load(), g.cellCount());
    for (const bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Sweep, FaultScenarioCellsDeliverUnderFaults)
{
    SweepGrid g;
    g.netSizes = {16};
    g.schemes = {RoutingScheme::TsdtSender};
    g.injectionRates = {0.1};
    g.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 4}};
    g.replicates = 3;
    g.measureCycles = 800;
    g.masterSeed = 31;
    const auto results = runSweep(g);
    ASSERT_EQ(results.size(), 1u);
    for (const auto &rep : results[0].replicates)
        EXPECT_GT(rep.metrics.delivered(), 0u);
    // Replicates draw independent fault sets and traffic: at least
    // one pair of replicates should differ in injected count.
    const auto &reps = results[0].replicates;
    EXPECT_TRUE(reps[0].metrics.injected() !=
                    reps[1].metrics.injected() ||
                reps[1].metrics.injected() !=
                    reps[2].metrics.injected());
}

} // namespace
} // namespace iadm
