/**
 * @file
 * The Section 3 theorems tested AS STATED — both directions of each
 * if-and-only-if — against brute-force reachability, over random
 * paths and every stage.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"

namespace iadm {
namespace {

using core::oracleReachable;
using core::tsdtTrace;
using core::TsdtTag;
using topo::IadmTopology;
using topo::LinkKind;

class TheoremP : public ::testing::TestWithParam<Label>
{
};

TEST_P(TheoremP, Theorem33StraightBlockageIff)
{
    // "There exists an alternate routing path that avoids the same
    // straight link blockage at stage i iff the original routing
    // path to d contains a nonstraight link at stage i-k, k > 0."
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    Rng rng(n_size * 31 + 7);
    for (int trial = 0; trial < 150; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const auto p = tsdtTrace(s, TsdtTag(n, d, st), n_size);
        for (unsigned i = 0; i < n; ++i) {
            if (p.kindAt(i) != LinkKind::Straight)
                continue;
            fault::FaultSet fs;
            fs.blockLink(p.linkAt(i));
            const bool alternate_exists =
                oracleReachable(topo, fs, s, d);
            const bool has_nonstraight_below =
                p.lastNonstraightBefore(i) >= 0;
            EXPECT_EQ(alternate_exists, has_nonstraight_below)
                << "N=" << n_size << " s=" << s << " d=" << d
                << " i=" << i << " path=" << p.str();
        }
    }
}

TEST_P(TheoremP, Theorem34DoubleNonstraightIff)
{
    // Same iff for a switch whose BOTH nonstraight output links are
    // blocked, when the path uses one of them.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    Rng rng(n_size * 37 + 3);
    for (int trial = 0; trial < 150; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const auto p = tsdtTrace(s, TsdtTag(n, d, st), n_size);
        for (unsigned i = 0; i < n; ++i) {
            if (p.kindAt(i) == LinkKind::Straight)
                continue;
            const Label j = p.switchAt(i);
            fault::FaultSet fs;
            fs.blockLink(topo.plusLink(i, j));
            fs.blockLink(topo.minusLink(i, j));
            const bool alternate_exists =
                oracleReachable(topo, fs, s, d);
            const bool has_nonstraight_below =
                p.lastNonstraightBefore(i) >= 0;
            EXPECT_EQ(alternate_exists, has_nonstraight_below)
                << "N=" << n_size << " s=" << s << " d=" << d
                << " i=" << i << " path=" << p.str();
        }
    }
}

TEST_P(TheoremP, Theorem32SingleNonstraightAlwaysAvoidable)
{
    // The "if" of Theorem 3.2 in blockage form: one blocked
    // nonstraight link on the path is always avoidable (via the
    // oppositely signed link of the same switch).
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    Rng rng(n_size * 41 + 9);
    for (int trial = 0; trial < 150; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const auto p = tsdtTrace(s, TsdtTag(n, d, st), n_size);
        for (unsigned i = 0; i < n; ++i) {
            if (p.kindAt(i) == LinkKind::Straight)
                continue;
            fault::FaultSet fs;
            fs.blockLink(p.linkAt(i));
            EXPECT_TRUE(oracleReachable(topo, fs, s, d));
        }
    }
}

TEST_P(TheoremP, StraightPrefixIsUnique)
{
    // The remark under Theorem 3.2: a run of straight links admits
    // no alternate between its endpoints — every path from s whose
    // low bits already match d must share the straight prefix.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    for (Label s = 0; s < std::min<Label>(n_size, 16); ++s) {
        // d reached straight from s through stage k: d == s on the
        // low k bits.
        const Label d = s; // fully straight path
        const auto p = tsdtTrace(s, core::initialTag(n, d), n_size);
        for (unsigned i = 0; i < n; ++i) {
            EXPECT_EQ(p.kindAt(i), LinkKind::Straight);
            fault::FaultSet fs;
            fs.blockLink(p.linkAt(i));
            EXPECT_FALSE(oracleReachable(topo, fs, s, d));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TheoremP,
                         ::testing::Values(8, 16, 32, 128));

} // namespace
} // namespace iadm
