/**
 * @file
 * Topology tests: IADM/ICube structure (paper Figures 1-3), the
 * embedded-subgraph relation, and the other cube-family networks.
 */

#include <gtest/gtest.h>

#include <set>

#include "topology/cube_family.hpp"
#include "topology/iadm.hpp"
#include "topology/icube.hpp"
#include "topology/render.hpp"

namespace iadm {
namespace {

using topo::IadmTopology;
using topo::ICubeTopology;
using topo::Link;
using topo::LinkKind;

class IadmTopologyP : public ::testing::TestWithParam<Label>
{
};

TEST_P(IadmTopologyP, StructureValidates)
{
    IadmTopology t(GetParam());
    t.validate();
}

TEST_P(IadmTopologyP, ThreeNLinksPerStage)
{
    // Paper: "Each stage consists of 3N connection links".
    IadmTopology t(GetParam());
    for (unsigned i = 0; i < t.stages(); ++i)
        EXPECT_EQ(t.stageLinks(i).size(), 3u * t.size());
}

TEST_P(IadmTopologyP, OutLinksMatchDefinition)
{
    // Switch j at stage i connects to (j-2^i), j, (j+2^i) mod N.
    IadmTopology t(GetParam());
    const Label n_size = t.size();
    for (unsigned i = 0; i < t.stages(); ++i) {
        for (Label j = 0; j < n_size; ++j) {
            const auto links = t.outLinks(i, j);
            ASSERT_EQ(links.size(), 3u);
            std::set<Label> targets;
            for (const Link &l : links) {
                EXPECT_EQ(l.stage, i);
                EXPECT_EQ(l.from, j);
                targets.insert(l.to);
            }
            EXPECT_TRUE(targets.count(j));
            EXPECT_TRUE(targets.count(
                static_cast<Label>((j + (1u << i)) % n_size)));
            EXPECT_TRUE(targets.count(static_cast<Label>(
                (j + n_size - (1u << i) % n_size) % n_size)));
        }
    }
}

TEST_P(IadmTopologyP, LastStagePlusMinusCoincideButDistinct)
{
    // +2^{n-1} == -2^{n-1} (mod N): same endpoints, two physical
    // links (the 2^N factor of Theorem 6.1 depends on this).
    IadmTopology t(GetParam());
    const unsigned last = t.stages() - 1;
    for (Label j = 0; j < t.size(); ++j) {
        const Link plus = t.plusLink(last, j);
        const Link minus = t.minusLink(last, j);
        EXPECT_EQ(plus.to, minus.to);
        EXPECT_FALSE(plus == minus);
        EXPECT_NE(plus.key(), minus.key());
    }
}

TEST_P(IadmTopologyP, InnerStagePlusMinusDiffer)
{
    IadmTopology t(GetParam());
    for (unsigned i = 0; i + 1 < t.stages(); ++i) {
        for (Label j = 0; j < t.size(); ++j)
            EXPECT_NE(t.plusLink(i, j).to, t.minusLink(i, j).to);
    }
}

TEST_P(IadmTopologyP, InDegreeIsThree)
{
    IadmTopology t(GetParam());
    for (unsigned i = 1; i <= t.stages(); ++i)
        for (Label j = 0; j < t.size(); ++j)
            EXPECT_EQ(t.inLinks(i, j).size(), 3u);
}

TEST_P(IadmTopologyP, OppositeNonstraight)
{
    IadmTopology t(GetParam());
    for (unsigned i = 0; i < t.stages(); ++i) {
        for (Label j = 0; j < t.size(); ++j) {
            const Link plus = t.plusLink(i, j);
            EXPECT_EQ(t.oppositeNonstraight(plus),
                      t.minusLink(i, j));
            EXPECT_EQ(t.oppositeNonstraight(t.minusLink(i, j)), plus);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IadmTopologyP,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

class ICubeTopologyP : public ::testing::TestWithParam<Label>
{
};

TEST_P(ICubeTopologyP, StructureValidates)
{
    ICubeTopology t(GetParam());
    t.validate();
    for (unsigned i = 0; i < t.stages(); ++i)
        EXPECT_EQ(t.stageLinks(i).size(), 2u * t.size());
}

TEST_P(ICubeTopologyP, CubeLinkFlipsExactlyBitI)
{
    ICubeTopology t(GetParam());
    for (unsigned i = 0; i < t.stages(); ++i) {
        for (Label j = 0; j < t.size(); ++j) {
            const auto l = t.cubeLink(i, j);
            EXPECT_EQ(l.to, static_cast<Label>(flipBit(j, i)));
        }
    }
}

TEST_P(ICubeTopologyP, IsSubgraphOfIadm)
{
    // Figure 2: the solid edges (ICube links) are IADM links.
    ICubeTopology cube(GetParam());
    IadmTopology iadm(GetParam());
    std::set<std::uint64_t> iadm_keys;
    for (const Link &l : iadm.allLinks())
        iadm_keys.insert(l.key());
    for (const Link &l : cube.allLinks())
        EXPECT_TRUE(iadm_keys.count(l.key()))
            << "ICube link missing from IADM: " << l.str();
}

TEST_P(ICubeTopologyP, DestinationTagReachesDestination)
{
    ICubeTopology t(GetParam());
    for (Label s = 0; s < t.size(); ++s) {
        for (Label d = 0; d < t.size(); ++d) {
            Label j = s;
            for (unsigned i = 0; i < t.stages(); ++i)
                j = t.nextHop(i, j, d);
            EXPECT_EQ(j, d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ICubeTopologyP,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(AdmTopology, MirrorsIadmStrides)
{
    topo::AdmTopology adm(16);
    adm.validate();
    EXPECT_EQ(adm.stride(0), 8u);
    EXPECT_EQ(adm.stride(3), 1u);
    // Stage i of the ADM moves by what stage n-1-i of the IADM does.
    IadmTopology iadm(16);
    for (unsigned i = 0; i < adm.stages(); ++i) {
        for (Label j = 0; j < adm.size(); ++j) {
            const auto a = adm.outLinks(i, j);
            const auto b =
                iadm.outLinks(adm.stages() - 1 - i, j);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t k = 0; k < a.size(); ++k)
                EXPECT_EQ(a[k].to, b[k].to);
        }
    }
}

TEST(GammaTopology, GraphEqualsIadm)
{
    topo::GammaTopology gamma(32);
    IadmTopology iadm(32);
    gamma.validate();
    const auto a = gamma.allLinks();
    const auto b = iadm.allLinks();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k].key(), b[k].key());
    EXPECT_NE(gamma.name(), iadm.name());
}

TEST(CubeFamily, AllValidate)
{
    for (Label n_size : {4u, 8u, 16u, 32u}) {
        topo::GeneralizedCubeTopology(n_size).validate();
        topo::OmegaTopology(n_size).validate();
        topo::BaselineTopology(n_size).validate();
        topo::FlipTopology(n_size).validate();
    }
}

TEST(CubeFamily, GeneralizedCubeDestinationTag)
{
    topo::GeneralizedCubeTopology t(32);
    for (Label s = 0; s < t.size(); ++s) {
        for (Label d = 0; d < t.size(); ++d) {
            Label j = s;
            for (unsigned i = 0; i < t.stages(); ++i)
                j = t.nextHop(i, j, d);
            EXPECT_EQ(j, d);
        }
    }
}

TEST(CubeFamily, OmegaDestinationTag)
{
    topo::OmegaTopology t(32);
    for (Label s = 0; s < t.size(); ++s) {
        for (Label d = 0; d < t.size(); ++d) {
            Label j = s;
            for (unsigned i = 0; i < t.stages(); ++i)
                j = t.nextHop(i, j, d);
            EXPECT_EQ(j, d) << "s=" << s << " d=" << d;
        }
    }
}

TEST(CubeFamily, OmegaNextHopIsALink)
{
    topo::OmegaTopology t(16);
    for (unsigned i = 0; i < t.stages(); ++i) {
        for (Label j = 0; j < t.size(); ++j) {
            for (Label d = 0; d < t.size(); ++d) {
                const Label nh = t.nextHop(i, j, d);
                bool found = false;
                for (const Link &l : t.outLinks(i, j))
                    found |= (l.to == nh);
                EXPECT_TRUE(found);
            }
        }
    }
}

TEST(CubeFamily, BaselineReachesAllDestinations)
{
    // The Baseline network is rearrangeable stage-by-stage: from any
    // source, following some link choice per stage must reach every
    // destination exactly once (it is a bijection tree).
    topo::BaselineTopology t(16);
    for (Label s = 0; s < t.size(); ++s) {
        std::set<Label> reached;
        // Enumerate all 2^n link-choice vectors.
        for (unsigned mask = 0; mask < t.size(); ++mask) {
            Label j = s;
            for (unsigned i = 0; i < t.stages(); ++i) {
                const auto links = t.outLinks(i, j);
                j = links[(mask >> i) & 1u].to;
            }
            reached.insert(j);
        }
        EXPECT_EQ(reached.size(), t.size()) << "source " << s;
    }
}

TEST(Render, DiagramsNonEmpty)
{
    IadmTopology t(8);
    EXPECT_NE(topo::asciiDiagram(t).find("IADM"), std::string::npos);
    EXPECT_NE(topo::linkTable(t).find("S0"), std::string::npos);
    const auto parity = topo::parityTable(t);
    // Figure 2's stage-0 classification: even_0 = {0,2,4,6}.
    EXPECT_NE(parity.find("even_0 = {0,2,4,6}"), std::string::npos);
    EXPECT_NE(parity.find("odd_0 = {1,3,5,7}"), std::string::npos);
}

TEST(Render, DotExport)
{
    IadmTopology t(4);
    const auto dot = t.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("s0_0"), std::string::npos);
}

TEST(LinkKeys, UniqueAcrossNetwork)
{
    IadmTopology t(64);
    std::set<std::uint64_t> keys;
    for (const Link &l : t.allLinks())
        EXPECT_TRUE(keys.insert(l.key()).second)
            << "duplicate key for " << l.str();
}

} // namespace
} // namespace iadm
