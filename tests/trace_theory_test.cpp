/**
 * @file
 * Trace-vs-theory cross-check (the observability acceptance gate):
 * every hop the inspector replays must satisfy the state-model link
 * function of Section 2, and every delivered packet must land on its
 * destination tag (Theorem 3.1) — for all (src, dst) pairs at N=64,
 * under both tag schemes, with and without blockages.
 *
 * The replay and the checks deliberately take different routes to
 * the same answer: the TSDT replay derives hops from the 2n-bit tag
 * (core::tsdtLinkKind), while the check below re-evaluates each hop
 * through the raw state-model functions (deltaFor / applyState /
 * linkKindFor) and through Lemma 2.1's bit-fixing property.  A
 * disagreement means the trace lies about what the network would do.
 */

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "core/state_model.hpp"
#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"
#include "obs/inspector.hpp"
#include "obs/trace_sink.hpp"

namespace {

using namespace iadm;
using obs::ReplayScheme;

constexpr Label kN = 64;

/**
 * Check one replayed route against the state model:
 *  - each hop's link kind and next switch equal what a switch of
 *    that label, state, and tag bit must do (Section 2's tables);
 *  - each hop fixes bit i of the label to the tag bit (Lemma 2.1);
 *  - consecutive hops chain (next == following hop's switch);
 *  - no hop crosses a blocked link;
 *  - the final switch is the destination (Theorem 3.1).
 */
void
checkAgainstTheory(const obs::ReplayResult &r,
                   const fault::FaultSet &faults)
{
    ASSERT_TRUE(r.delivered);
    ASSERT_EQ(r.hops.size(), std::size_t{log2Floor(kN)});

    Label j = r.src;
    for (const obs::ReplayHop &h : r.hops) {
        ASSERT_EQ(h.sw, j) << "hop chain broken at stage "
                           << h.stage;
        const unsigned i = h.stage;

        // The raw state-model evaluation of this (switch, state,
        // tag-bit) triple.
        EXPECT_EQ(h.kind,
                  core::linkKindFor(j, h.tagBit, i, h.state));
        EXPECT_EQ(h.next,
                  core::applyState(j, h.tagBit, i, kN, h.state));

        // Lemma 2.1: both states set bit i of the label to t.
        EXPECT_EQ(bit(h.next, i), h.tagBit & 1u);

        // The physical link must exist unblocked.
        EXPECT_FALSE(
            faults.isBlocked(topo::Link{i, j, h.next, h.kind}))
            << "replay crossed a blocked link at stage " << i;

        j = h.next;
    }
    // Theorem 3.1: the destination address is the destination tag.
    EXPECT_EQ(j, r.dst);
}

/** All-pairs replay under @p faults; returns delivered count. */
std::size_t
sweepAllPairs(ReplayScheme scheme, const fault::FaultSet &faults)
{
    const topo::IadmTopology net(kN);
    std::size_t delivered = 0;
    for (Label s = 0; s < kN; ++s) {
        for (Label d = 0; d < kN; ++d) {
            const auto r =
                obs::replayRoute(net, faults, s, d, scheme);
            if (r.delivered) {
                checkAgainstTheory(r, faults);
                ++delivered;
            } else {
                EXPECT_FALSE(r.failReason.empty());
            }
            // TSDT delivery is additionally cross-checked against
            // the tag: the consumed bits must be the tag's bits.
            if (r.delivered && scheme == ReplayScheme::Tsdt) {
                EXPECT_EQ(r.tag.destination(), d);
                for (const auto &h : r.hops) {
                    EXPECT_EQ(h.tagBit, r.tag.destBit(h.stage));
                    EXPECT_EQ(h.stateBit, r.tag.stateBit(h.stage));
                }
            }
        }
    }
    return delivered;
}

TEST(TraceTheory, FaultFreeSsdtAllPairs)
{
    // No blockages: every pair routes and every hop obeys the model.
    EXPECT_EQ(sweepAllPairs(ReplayScheme::Ssdt, {}),
              std::size_t{kN} * kN);
}

TEST(TraceTheory, FaultFreeTsdtAllPairs)
{
    EXPECT_EQ(sweepAllPairs(ReplayScheme::Tsdt, {}),
              std::size_t{kN} * kN);
}

/** A deterministic mixed blockage set exercising every repair arm. */
fault::FaultSet
mixedFaults(const topo::IadmTopology &net)
{
    fault::FaultSet f;
    f.blockLink(net.plusLink(0, 5));    // nonstraight, stage 0
    f.blockLink(net.minusLink(1, 20));  // nonstraight, stage 1
    f.blockLink(net.plusLink(2, 33));
    f.blockLink(net.minusLink(2, 33));  // double-nonstraight pair
    f.blockLink(net.straightLink(3, 48)); // straight blockage
    f.blockLink(net.plusLink(4, 7));
    f.blockLink(net.minusLink(5, 11));
    return f;
}

TEST(TraceTheory, FaultedSsdtAllPairs)
{
    const topo::IadmTopology net(kN);
    const fault::FaultSet faults = mixedFaults(net);
    const std::size_t delivered =
        sweepAllPairs(ReplayScheme::Ssdt, faults);
    // SSDT repairs single-nonstraight blockages only (Theorem 3.2):
    // most pairs still deliver, the straight/double-nonstraight
    // blockages strand some.
    EXPECT_LT(delivered, std::size_t{kN} * kN);
    EXPECT_GT(delivered, std::size_t{kN} * kN * 8 / 10);
}

TEST(TraceTheory, FaultedTsdtAllPairs)
{
    const topo::IadmTopology net(kN);
    const fault::FaultSet faults = mixedFaults(net);
    // Sender-side REROUTE recovers every pair a blockage-free path
    // still exists for; a FAIL is acceptable only when the oracle
    // confirms no such path (Theorem 5.1's completeness).
    const std::size_t delivered =
        sweepAllPairs(ReplayScheme::Tsdt, faults);
    std::size_t unreachable = 0;
    for (Label s = 0; s < kN; ++s) {
        for (Label d = 0; d < kN; ++d) {
            if (!core::oracleReachable(net, faults, s, d))
                ++unreachable;
        }
    }
    EXPECT_EQ(delivered + unreachable, std::size_t{kN} * kN);
    EXPECT_GT(delivered, std::size_t{kN} * kN * 9 / 10);
}

TEST(TraceTheory, ReplayEmitsTheHopsItNarrates)
{
    // The event stream is the narration: replaying with a sink
    // attached must record exactly one Hop event per narrated hop,
    // in order, with matching switches and links.
    const topo::IadmTopology net(kN);
    const fault::FaultSet faults = mixedFaults(net);
    obs::TraceSink sink(256);

    const auto r = obs::replayRoute(net, faults, 5, 60,
                                    ReplayScheme::Tsdt, &sink, 99);
    ASSERT_TRUE(r.delivered);

    const auto events = sink.snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, obs::EventKind::Inject);
    EXPECT_EQ(events.back().kind, obs::EventKind::Deliver);

    std::size_t hop_at = 0;
    for (const auto &e : events) {
        if (e.kind != obs::EventKind::Hop)
            continue;
        ASSERT_LT(hop_at, r.hops.size());
        EXPECT_EQ(e.packet, 99u);
        EXPECT_EQ(e.stage, r.hops[hop_at].stage);
        EXPECT_EQ(e.sw, r.hops[hop_at].sw);
        EXPECT_EQ(e.aux, r.hops[hop_at].next);
        EXPECT_EQ(static_cast<topo::LinkKind>(e.link),
                  r.hops[hop_at].kind);
        ++hop_at;
    }
    EXPECT_EQ(hop_at, r.hops.size());
}

} // namespace
