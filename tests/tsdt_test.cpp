/**
 * @file
 * TSDT scheme tests: the 2n-bit tag semantics, Lemma A1.1/A1.2,
 * Corollaries 4.1 and 4.2, and the paper's worked Figure 7 examples.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/tsdt.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using core::initialTag;
using core::Path;
using core::rerouteBacktrack;
using core::rerouteNonstraight;
using core::tagForPath;
using core::TsdtTag;
using core::tsdtLinkKind;
using core::tsdtTrace;
using topo::IadmTopology;
using topo::LinkKind;

TEST(TsdtTag, EncodeDecodeRoundTrip)
{
    for (unsigned n = 1; n <= 8; ++n) {
        Rng rng(n);
        for (int trial = 0; trial < 50; ++trial) {
            const auto dest =
                static_cast<Label>(rng.uniform(Label{1} << n));
            const auto state =
                static_cast<Label>(rng.uniform(Label{1} << n));
            const TsdtTag tag(n, dest, state);
            EXPECT_EQ(TsdtTag::decode(n, tag.encoded()), tag);
        }
    }
}

TEST(TsdtTag, BitAccessors)
{
    TsdtTag tag(3, 0b101, 0b010);
    EXPECT_EQ(tag.destBit(0), 1u);
    EXPECT_EQ(tag.destBit(1), 0u);
    EXPECT_EQ(tag.destBit(2), 1u);
    EXPECT_EQ(tag.stateBit(0), 0u);
    EXPECT_EQ(tag.stateBit(1), 1u);
    EXPECT_EQ(tag.stateAt(1), core::SwitchState::Cbar);
    tag.flipStateBit(0);
    EXPECT_EQ(tag.stateBit(0), 1u);
    tag.setStateBit(0, 0);
    EXPECT_EQ(tag.stateBit(0), 0u);
}

TEST(TsdtTag, PaperSwitchingTable)
{
    // Paper, Section 4: for an even_i switch b_i b_{n+i} = 00,01 ->
    // straight, 10 -> +2^i, 11 -> -2^i; for an odd_i switch 10,11 ->
    // straight, 01 -> +2^i, 00 -> -2^i.
    const unsigned n = 3;
    const unsigned i = 1;
    const Label even_sw = 0b000; // bit 1 = 0
    const Label odd_sw = 0b010;  // bit 1 = 1

    const auto kind = [&](Label j, unsigned bi, unsigned bni) {
        const TsdtTag tag(
            n, static_cast<Label>(bi << i),
            static_cast<Label>(bni << i));
        return tsdtLinkKind(j, i, tag);
    };

    EXPECT_EQ(kind(even_sw, 0, 0), LinkKind::Straight);
    EXPECT_EQ(kind(even_sw, 0, 1), LinkKind::Straight);
    EXPECT_EQ(kind(even_sw, 1, 0), LinkKind::Plus);
    EXPECT_EQ(kind(even_sw, 1, 1), LinkKind::Minus);

    EXPECT_EQ(kind(odd_sw, 1, 0), LinkKind::Straight);
    EXPECT_EQ(kind(odd_sw, 1, 1), LinkKind::Straight);
    EXPECT_EQ(kind(odd_sw, 0, 1), LinkKind::Plus);
    EXPECT_EQ(kind(odd_sw, 0, 0), LinkKind::Minus);
}

class TsdtP : public ::testing::TestWithParam<Label>
{
};

TEST_P(TsdtP, AnyTagReachesItsDestinationBits)
{
    // Theorem 3.1 in TSDT form: arbitrary state bits never change
    // the destination.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    Rng rng(7 * n_size + 1);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const TsdtTag tag(n, d, st);
        const Path p = tsdtTrace(s, tag, n_size);
        EXPECT_EQ(p.destination(), d);
        IadmTopology topo(n_size);
        p.validate(topo);
    }
}

TEST_P(TsdtP, TagForPathRoundTrip)
{
    // Lemma A1.1: reconstructing a tag from a traced path and
    // retracing yields the same path.
    const Label n_size = GetParam();
    const unsigned n = log2Floor(n_size);
    Rng rng(13 * n_size + 5);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const Path p = tsdtTrace(s, TsdtTag(n, d, st), n_size);
        const TsdtTag rebuilt = tagForPath(p, n);
        EXPECT_EQ(tsdtTrace(s, rebuilt, n_size), p);
    }
}

TEST_P(TsdtP, EveryOraclePathIsTsdtRealizable)
{
    // Every routing path of the network corresponds to some tag
    // (the "given a path ... there is at least one network state"
    // remark under Theorem 3.1).
    const Label n_size = GetParam();
    if (n_size > 16)
        GTEST_SKIP() << "path enumeration too large";
    const unsigned n = log2Floor(n_size);
    IadmTopology topo(n_size);
    for (Label s = 0; s < n_size; ++s) {
        for (Label d = 0; d < n_size; ++d) {
            for (const Path &p : core::oracleAllPaths(topo, s, d)) {
                const TsdtTag tag = tagForPath(p, n);
                EXPECT_EQ(tsdtTrace(s, tag, n_size), p);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TsdtP,
                         ::testing::Values(4, 8, 16, 64, 256));

TEST(Corollary41, FlipsToOppositeNonstraightLink)
{
    // A nonstraight hop at stage i is replaced by the oppositely
    // signed hop of the same switch; the path below stage i is
    // unchanged and the destination is preserved.
    const Label n_size = 16;
    const unsigned n = 4;
    Rng rng(21);
    for (int trial = 0; trial < 500; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const auto st = static_cast<Label>(rng.uniform(n_size));
        const TsdtTag tag(n, d, st);
        const Path p = tsdtTrace(s, tag, n_size);
        for (unsigned i = 0; i < n; ++i) {
            if (p.kindAt(i) == LinkKind::Straight)
                continue;
            const TsdtTag re = rerouteNonstraight(tag, i);
            const Path q = tsdtTrace(s, re, n_size);
            EXPECT_EQ(q.destination(), d);
            for (unsigned k = 0; k <= i; ++k)
                EXPECT_EQ(q.switchAt(k), p.switchAt(k));
            EXPECT_NE(q.kindAt(i), p.kindAt(i));
            EXPECT_NE(q.kindAt(i), LinkKind::Straight);
        }
    }
}

TEST(Corollary41, StraightHopUnchangedByFlip)
{
    // Theorem 3.2 "only if": flipping the state bit of a straight
    // hop leaves the hop (not necessarily the whole path) alone.
    const Label n_size = 16;
    const unsigned n = 4;
    Rng rng(22);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const TsdtTag tag(n, d,
                          static_cast<Label>(rng.uniform(n_size)));
        const Path p = tsdtTrace(s, tag, n_size);
        for (unsigned i = 0; i < n; ++i) {
            if (p.kindAt(i) != LinkKind::Straight)
                continue;
            const Path q =
                tsdtTrace(s, rerouteNonstraight(tag, i), n_size);
            EXPECT_EQ(q.switchAt(i + 1), p.switchAt(i + 1));
            EXPECT_EQ(q.kindAt(i), LinkKind::Straight);
        }
    }
}

TEST(Corollary42, ReroutesAroundStraightStages)
{
    // For each path with a nonstraight link at stage r followed by
    // straight links, rerouting from a blockage at stage i > r must
    // produce a path that differs at stages r..i-1 and still reaches
    // the destination.
    const Label n_size = 32;
    const unsigned n = 5;
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(n_size));
        const auto d = static_cast<Label>(rng.uniform(n_size));
        const TsdtTag tag(n, d,
                          static_cast<Label>(rng.uniform(n_size)));
        const Path p = tsdtTrace(s, tag, n_size);
        for (unsigned i = 1; i < n; ++i) {
            const int r = p.lastNonstraightBefore(i);
            const auto re = rerouteBacktrack(tag, p, i);
            if (r < 0) {
                EXPECT_FALSE(re.has_value());
                continue;
            }
            ASSERT_TRUE(re.has_value());
            const Path q = tsdtTrace(s, *re, n_size);
            EXPECT_EQ(q.destination(), d);
            // Unchanged strictly below stage r.
            for (int k = 0; k <= r; ++k)
                EXPECT_EQ(q.switchAt(k), p.switchAt(k));
            // The rerouting path leaves the original at stage r and
            // avoids the original switch at stage i (where the
            // blockage was).
            EXPECT_NE(q.switchAt(r + 1), p.switchAt(r + 1));
            EXPECT_NE(q.switchAt(i), p.switchAt(i));
        }
    }
}

TEST(Figure7, OriginalTagPath)
{
    // Figure 7 example: s=1, d=0, N=8; tag b_{0/5} = 000000
    // specifies (1 in S0, 0 in S1, 0 in S2, 0 in S3).
    const Label n_size = 8;
    const TsdtTag tag = TsdtTag::decode(3, 0b000000);
    const Path p = tsdtTrace(1, tag, n_size);
    EXPECT_EQ(p.switchAt(0), 1u);
    EXPECT_EQ(p.switchAt(1), 0u);
    EXPECT_EQ(p.switchAt(2), 0u);
    EXPECT_EQ(p.switchAt(3), 0u);
}

TEST(Figure7, RerouteNonstraightAtStage0)
{
    // If (1 in S0, 0 in S1) is blocked, complementing b_3 gives
    // 000100 and the path (1, 2, 0, 0).
    const TsdtTag tag = TsdtTag::decode(3, 0b000000);
    const TsdtTag re = rerouteNonstraight(tag, 0);
    EXPECT_EQ(re.encoded(), 0b001000u); // b_3 set (LSB-first: 000100)
    const Path p = tsdtTrace(1, re, 8);
    EXPECT_EQ(p.switchAt(1), 2u);
    EXPECT_EQ(p.switchAt(2), 0u);
    EXPECT_EQ(p.switchAt(3), 0u);
}

TEST(Figure7, SecondRerouteAtStage1)
{
    // If (2 in S1, 0 in S2) is also blocked, complementing b_4 gives
    // 000110 and the path (1, 2, 4, 0).
    TsdtTag re = TsdtTag::decode(3, 0b001000);
    re = rerouteNonstraight(re, 1);
    EXPECT_EQ(re.str(), "000110");
    const Path p = tsdtTrace(1, re, 8);
    EXPECT_EQ(p.switchAt(1), 2u);
    EXPECT_EQ(p.switchAt(2), 4u);
    EXPECT_EQ(p.switchAt(3), 0u);
}

TEST(Figure7, StraightBlockageBacktrack)
{
    // Section 4 example (a): tag 000000, straight link
    // (0 in S1, 0 in S2) blocked; 000110 (and 000100) are valid
    // rerouting tags.
    const Label n_size = 8;
    const TsdtTag tag = TsdtTag::decode(3, 0b000000);
    const Path p = tsdtTrace(1, tag, n_size);
    const auto re = rerouteBacktrack(tag, p, 1);
    ASSERT_TRUE(re.has_value());
    const Path q = tsdtTrace(1, *re, n_size);
    // The paper's rerouting path: (1, 2, 0 or 4, 0).
    EXPECT_EQ(q.switchAt(0), 1u);
    EXPECT_EQ(q.switchAt(1), 2u);
    EXPECT_EQ(q.switchAt(3), 0u);
    // State bit b_3 must have been complemented to d0-bar = 1.
    EXPECT_EQ(re->stateBit(0), 1u);
}

TEST(Figure7, DoubleNonstraightBacktrack)
{
    // Section 4 example (b): tag 000110 specifies (1,2,4,0); if both
    // nonstraight outputs of 4 in S2 are blocked, 000100 (and
    // 000101) reroute via (1,2,0,0).
    const Label n_size = 8;
    const TsdtTag tag = TsdtTag::decode(3, 0b011000);
    const Path p = tsdtTrace(1, tag, n_size);
    ASSERT_EQ(p.switchAt(2), 4u);
    const auto re = rerouteBacktrack(tag, p, 2);
    ASSERT_TRUE(re.has_value());
    const Path q = tsdtTrace(1, *re, n_size);
    EXPECT_EQ(q.switchAt(1), 2u);
    EXPECT_EQ(q.switchAt(2), 0u);
    EXPECT_EQ(q.switchAt(3), 0u);
}

TEST(TsdtTagDeathTest, RejectsOutOfRangeFields)
{
    EXPECT_DEATH(TsdtTag(3, 8, 0), "destination out of range");
    EXPECT_DEATH(TsdtTag(3, 0, 8), "state bits out of range");
    TsdtTag ok(3, 1, 1);
    EXPECT_DEATH((void)ok.stateBit(3), "stage out of range");
    EXPECT_DEATH(ok.setStateBit(5, 1), "stage out of range");
}

TEST(TsdtTagDeathTest, TraceRejectsSizeMismatch)
{
    const TsdtTag tag(3, 0, 0);
    EXPECT_DEATH((void)tsdtTrace(0, tag, 16),
                 "tag/network size mismatch");
}

TEST(TsdtTag, StrIsLsbFirst)
{
    // d = 0, state bits b_3 b_4 b_5 = 1 1 0 -> "000110".
    const TsdtTag tag(3, 0, 0b011);
    EXPECT_EQ(tag.str(), "000110");
}

} // namespace
} // namespace iadm
