/**
 * @file
 * iadm_tool — command-line front end for the library.
 *
 *   iadm_tool diagram <N>
 *   iadm_tool route   <N> <src> <dst> [stage:from:kind ...]
 *                     [--repeat K]   (exercise the route cache)
 *   iadm_tool paths   <N> <src> <dst>
 *   iadm_tool census  <N>
 *   iadm_tool perm    <N> <identity|shift:K|bitrev|complement:M|
 *                          shuffle|exchange:K|transpose>
 *   iadm_tool sim     <N> <ssdt|ssdt-balanced|tsdt|distance-tag>
 *                     <rate> <cycles> [--trace FILE]
 *                     [--trace-bin FILE] [--stats]
 *   iadm_tool sweep   [--sizes 8,16] [--schemes ssdt,tsdt] ...
 *                     (deterministic parallel grid; see usage())
 *   iadm_tool trace   <src> <dst> [--n N] [--scheme ssdt|tsdt]
 *                     [--faults stage:from:kind,...]
 *                     [--export FILE] [--export-bin FILE]
 *                     (single-packet state-model replay)
 *   iadm_tool snapshot <trace.bin> <cycle>
 *                     (queue/state heatmaps from a binary trace)
 *
 * Blocked links are written stage:from:kind with kind one of
 * s (straight), p (+2^i), m (-2^i); e.g. "1:0:s 0:1:m".
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/distributed.hpp"
#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "core/reroute.hpp"
#include "obs/health.hpp"
#include "obs/inspector.hpp"
#include "obs/stats.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_sink.hpp"
#include "perm/multipass.hpp"
#include "serve/server.hpp"
#include "sim/network_sim.hpp"
#include "sim/route_cache.hpp"
#include "sim/sweep.hpp"
#include "subgraph/enumeration.hpp"
#include "topology/render.hpp"

namespace {

using namespace iadm;

void
printUsage(std::ostream &os)
{
    os
        << "usage:\n"
        << "  iadm_tool diagram <N>\n"
        << "  iadm_tool route  <N> <src> <dst> [stage:from:kind...]"
           " [--repeat K]\n"
        << "  iadm_tool paths  <N> <src> <dst>\n"
        << "  iadm_tool census <N>\n"
        << "  iadm_tool perm   <N> <spec>\n"
        << "  iadm_tool sim    <N> <scheme> <rate> <cycles>"
           " [--trace FILE] [--trace-bin FILE] [--stats]\n"
        << "                   [--scenario SPEC] (see below;"
           " --traffic is an alias)\n"
        << "                   [--churn bernoulli:PF:PR|"
           "geometric:MTBF:MTTR|burst:IVL:DUR:SPAN]\n"
        << "                   [--max-age CYCLES] [--shards S]"
           " [--health]\n"
        << "  iadm_tool sweep  [--sizes 8,16] [--schemes "
           "ssdt,tsdt,...]\n"
        << "                   [--rates 0.1,0.3] [--caps 4]\n"
        << "                   [--faults none,links:4,...] "
           "[--traffic uniform,hotspot:0:0.2,...]\n"
        << "                   [--scenario SPEC,...] (scenario "
           "grammar, docs/SIMULATOR.md:\n"
        << "                    dst:uniform | dst:hotspot:0+5:0.3 | "
           "dst:perm:shift:4|bitrev|...\n"
        << "                    | dst:adversarial | dst:mcast:G:F, "
           "composed with\n"
        << "                    shape:bursty:B:I / shape:ramp:F0:F1:C"
           " / shape:closed:W,\n"
        << "                    e.g. shape:bursty:16:64/"
           "dst:hotspot:0:0.2)\n"
        << "                   [--churn none,bernoulli:PF:PR,...] "
           "[--max-age CYCLES]\n"
        << "                   [--crossbar 0,1] [--replicates R]\n"
        << "                   [--warmup C] [--cycles C] [--seed S]\n"
        << "                   [--workers W] [--shards S] "
           "[--out FILE] [--no-timing]\n"
        << "                   [--stats] [--trace-dir DIR] "
           "[--health]\n"
        << "  iadm_tool trace  <src> <dst> [--n N] "
           "[--scheme ssdt|tsdt]\n"
        << "                   [--faults stage:from:kind,...]\n"
        << "                   [--export FILE] [--export-bin FILE]\n"
        << "  iadm_tool snapshot <trace.bin> <cycle>\n"
        << "  iadm_tool serve  --net N --scheme S --socket PATH\n"
        << "                   [--faults SPEC] [--churn SPEC] "
           "[--no-batch]\n"
        << "                   [--cache-capacity C] [--tick-us U] "
           "[--seed S]\n"
        << "  iadm_tool --version\n";
}

int
usage()
{
    printUsage(std::cerr);
    return 2;
}

/**
 * Wrong-arity diagnostic: name the first missing argument instead of
 * dumping the whole usage block (ops hygiene — a typo'd script line
 * should say what is wrong, not scroll the terminal).  Always exit 2.
 */
int
missingArg(const char *cmd, const char *arg, const char *synopsis)
{
    std::cerr << "iadm_tool " << cmd << ": missing <" << arg
              << ">\n  usage: iadm_tool " << synopsis << "\n";
    return 2;
}

int
printVersion()
{
#ifdef IADM_TOOL_VERSION
    const char *version = IADM_TOOL_VERSION;
#else
    const char *version = "unknown";
#endif
#ifdef IADM_TOOL_BUILD_TYPE
    const char *build_type = IADM_TOOL_BUILD_TYPE;
#else
    const char *build_type = "unknown";
#endif
#ifdef IADM_SANITIZE_BUILD
    const bool sanitize = true;
#else
    const bool sanitize = false;
#endif
    std::cout << "iadm_tool " << version << " (build " << build_type
              << "; IADM_TRACE="
              << (obs::traceCompiledIn() ? "on" : "off")
              << "; IADM_SANITIZE=" << (sanitize ? "on" : "off")
              << ")\n";
    return 0;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::string cur;
    std::istringstream is(s);
    while (std::getline(is, cur, ','))
        parts.push_back(cur);
    return parts;
}

bool
parseLink(const topo::IadmTopology &net, const std::string &spec,
          topo::Link &out)
{
    // Shared with the daemon's inject-fault handler.
    return serve::parseLinkSpec(net, spec, out);
}

int
cmdDiagram(Label n_size)
{
    const topo::IadmTopology net(n_size);
    std::cout << topo::asciiDiagram(net) << "\n"
              << topo::parityTable(net);
    return 0;
}

int
cmdRoute(Label n_size, Label s, Label d,
         const std::vector<std::string> &link_specs)
{
    const topo::IadmTopology net(n_size);
    fault::FaultSet faults;
    unsigned repeat = 1;
    for (std::size_t i = 0; i < link_specs.size(); ++i) {
        const auto &spec = link_specs[i];
        if (spec == "--repeat") {
            if (i + 1 >= link_specs.size()) {
                std::cerr << "--repeat needs a count\n";
                return 2;
            }
            repeat = static_cast<unsigned>(
                std::atoi(link_specs[++i].c_str()));
            if (repeat == 0)
                repeat = 1;
            continue;
        }
        topo::Link l{};
        if (!parseLink(net, spec, l)) {
            std::cerr << "bad link spec: " << spec << "\n";
            return 2;
        }
        faults.blockLink(l);
        std::cout << "blocked: " << l.str() << "\n";
    }
    const auto res = core::universalRoute(net, faults, s, d);
    if (repeat > 1) {
        // Resolve the same pair through the fault-epoch route cache
        // (what a faulted simulation does per injected packet): one
        // miss computes, every repeat replays.
        sim::RouteCache cache(n_size);
        unsigned agree = 0;
        for (unsigned k = 0; k < repeat; ++k) {
            const auto [e, hit] =
                cache.resolveUniversal(net, faults, s, d);
            agree += e->ok() == res.ok &&
                     (!res.ok ||
                      e->tagFor(net.stages()) == res.tag);
        }
        std::cout << "cache: " << repeat << " resolutions -> "
                  << cache.stats().hits << " hit(s), "
                  << cache.stats().misses << " miss(es); "
                  << (agree == repeat ? "every replay matches REROUTE"
                                      : "REPLAY DIVERGED?!")
                  << "\n";
    }
    if (!res.ok) {
        std::cout << "UNROUTABLE: no blockage-free path exists "
                     "(verified: "
                  << (core::oracleReachable(net, faults, s, d)
                          ? "ORACLE DISAGREES?!"
                          : "oracle agrees")
                  << ")\n";
        return 1;
    }
    std::cout << "tag  : " << res.tag.str() << " (dest bits + state "
              << "bits, LSB first)\n";
    std::cout << "path : " << res.path.str() << "\n";
    std::cout << "cost : " << res.corollary41
              << " corollary-4.1 flips, " << res.backtracks
              << " BACKTRACK calls\n";
    const auto dyn = core::distributedRoute(net, faults, s,
                                            res.tag.destination());
    std::cout << "dynamic walk: " << dyn.forwardHops << " forward + "
              << dyn.backtrackHops << " backtrack hops, "
              << dyn.probes << " probes\n";
    if (!link_specs.empty()) {
        std::cout << "--- narration ---\n"
                  << core::explainReroute(net, faults, s, d);
    }
    return 0;
}

int
cmdPaths(Label n_size, Label s, Label d)
{
    const topo::IadmTopology net(n_size);
    const auto paths = core::oracleAllPaths(net, s, d);
    std::cout << paths.size() << " routing paths " << s << " -> "
              << d << ":\n";
    for (const auto &p : paths) {
        std::cout << "  tag " << core::tagForPath(p, net.stages()).str()
                  << " : " << p.str() << "\n";
    }
    const core::PivotInfo info(s, d, n_size);
    std::cout << "pivots:";
    for (unsigned i = 0; i <= net.stages(); ++i) {
        std::cout << " {";
        for (std::size_t k = 0; k < info.at(i).size(); ++k)
            std::cout << (k ? "," : "") << info.at(i)[k];
        std::cout << "}";
    }
    std::cout << "\n";
    return 0;
}

int
cmdCensus(Label n_size)
{
    const topo::IadmTopology net(n_size);
    std::cout << "distinct prefix families: "
              << subgraph::countDistinctPrefixFamilies(net) << "\n";
    std::cout << "Theorem 6.1 lower bound: N/2 * 2^N = "
              << ((static_cast<std::uint64_t>(n_size) / 2)
                  << n_size)
              << "\n";
    if (n_size <= 8) {
        const auto c = subgraph::exhaustiveCensus(net);
        std::cout << "exhaustive census: " << c.isoToICube
                  << " iso prefixes, total "
                  << c.totalWithLastStage << "\n";
    } else if (n_size <= 32) {
        const auto c = subgraph::smartCensus(net);
        std::cout << "smart census: " << c.involutionValid
                  << " involution-valid, " << c.isoToICube
                  << " iso prefixes (" << c.nonFamilyIso
                  << " outside the relabeling family), total "
                  << c.totalWithLastStage << "\n";
    }
    return 0;
}

int
cmdPerm(Label n_size, const std::string &spec)
{
    perm::Permutation p(n_size);
    const auto col = spec.find(':');
    const std::string name = spec.substr(0, col);
    const Label arg =
        col == std::string::npos
            ? 0
            : static_cast<Label>(std::atoi(spec.c_str() + col + 1));
    if (name == "identity")
        p = perm::Permutation(n_size);
    else if (name == "shift")
        p = perm::shiftPerm(n_size, arg % n_size);
    else if (name == "bitrev")
        p = perm::bitReversalPerm(n_size);
    else if (name == "complement")
        p = perm::bitComplementPerm(n_size, arg % n_size);
    else if (name == "shuffle")
        p = perm::perfectShufflePerm(n_size);
    else if (name == "exchange")
        p = perm::exchangePerm(n_size, arg);
    else if (name == "transpose")
        p = perm::transposePerm(n_size);
    else {
        std::cerr << "unknown permutation: " << name << "\n";
        return 2;
    }
    std::cout << "perm: " << p.str() << "\n";
    const auto offsets = perm::passingOffsets(p);
    if (offsets.empty()) {
        std::cout << "not passable in one pass; scheduling "
                     "waves...\n";
        const topo::IadmTopology net(n_size);
        const auto mp = perm::routeInPasses(net, p);
        std::cout << "passes: " << mp.passes() << "\n";
        for (std::size_t w = 0; w < mp.waves.size(); ++w)
            std::cout << "  wave " << w + 1 << ": "
                      << mp.waves[w].sources.size()
                      << " messages\n";
    } else {
        std::cout << "passable via " << offsets.size()
                  << " cube-subgraph offsets; first x="
                  << offsets.front() << "\n";
    }
    return 0;
}

/** Open @p path for writing, creating parent directories. */
std::ofstream
openOut(const std::string &path)
{
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent);
    return std::ofstream(path, std::ios::binary);
}

int
cmdSim(Label n_size, const std::string &scheme, double rate,
       sim::Cycle cycles, const std::vector<std::string> &extra)
{
    sim::SimConfig cfg;
    cfg.netSize = n_size;
    cfg.injectionRate = rate;
    if (scheme == "ssdt")
        cfg.scheme = sim::RoutingScheme::SsdtStatic;
    else if (scheme == "ssdt-balanced")
        cfg.scheme = sim::RoutingScheme::SsdtBalanced;
    else if (scheme == "tsdt")
        cfg.scheme = sim::RoutingScheme::TsdtSender;
    else if (scheme == "distance-tag")
        cfg.scheme = sim::RoutingScheme::DistanceTag;
    else if (scheme == "tsdt-dynamic")
        cfg.scheme = sim::RoutingScheme::TsdtDynamic;
    else {
        std::cerr << "unknown scheme: " << scheme << "\n";
        return 2;
    }

    std::string trace_json, trace_bin;
    bool stats = false;
    bool health = false;
    sim::ChurnSpec churn;
    sim::TrafficSpec traffic; // uniform unless --scenario/--traffic
    for (std::size_t i = 0; i < extra.size(); ++i) {
        if (extra[i] == "--stats") {
            stats = true;
        } else if (extra[i] == "--health") {
            health = true;
        } else if ((extra[i] == "--scenario" ||
                    extra[i] == "--traffic") &&
                   i + 1 < extra.size()) {
            const auto t = sim::TrafficSpec::parse(extra[++i]);
            if (!t) {
                std::cerr << "sim: bad scenario spec: " << extra[i]
                          << "\n";
                return 2;
            }
            traffic = *t;
        } else if (extra[i] == "--trace" && i + 1 < extra.size()) {
            trace_json = extra[++i];
        } else if (extra[i] == "--trace-bin" &&
                   i + 1 < extra.size()) {
            trace_bin = extra[++i];
        } else if (extra[i] == "--churn" && i + 1 < extra.size()) {
            const auto c = sim::ChurnSpec::parse(extra[++i]);
            if (!c) {
                std::cerr << "sim: bad churn spec: " << extra[i]
                          << "\n";
                return 2;
            }
            churn = *c;
        } else if (extra[i] == "--max-age" && i + 1 < extra.size()) {
            cfg.maxPacketAge = static_cast<sim::Cycle>(
                std::strtoull(extra[++i].c_str(), nullptr, 10));
        } else if (extra[i] == "--shards" && i + 1 < extra.size()) {
            cfg.shards =
                static_cast<unsigned>(std::atoi(extra[++i].c_str()));
        } else {
            std::cerr << "sim: bad flag " << extra[i] << "\n";
            return 2;
        }
    }

    if (const auto err = traffic.validate(n_size)) {
        std::cerr << "sim: invalid scenario '" << traffic.name()
                  << "': " << *err << "\n";
        return 2;
    }
    sim::NetworkSim s(cfg, traffic.make(n_size));
    if (traffic.kind != sim::TrafficSpec::Kind::Uniform)
        std::cout << "scenario: " << traffic.name() << "\n";
    if (churn.kind != sim::ChurnSpec::Kind::None) {
        const topo::IadmTopology net(n_size);
        s.addFaultProcess(
            churn.make(net, cfg.seed ^ 0xc402d5eed5ull));
        std::cout << "churn: " << churn.name() << "\n";
    }
    const bool want_trace = !trace_json.empty() || !trace_bin.empty();
    obs::TraceSink sink;
    if (want_trace) {
        if (!obs::traceCompiledIn())
            IADM_WARN("this build compiled without IADM_TRACE; "
                      "the exported trace will be empty");
        s.setTraceSink(&sink);
    }
    obs::HealthMonitor monitor;
    if (health) {
        if (!obs::healthCompiledIn())
            IADM_WARN("this build compiled without IADM_HEALTH; "
                      "the monitor will observe nothing");
        s.setHealthMonitor(&monitor);
    }
    s.run(cycles);
    std::cout << s.metrics().summary(cycles) << "\n";
    std::cout << "p50/p90/p99 latency: "
              << s.metrics().latencyPercentile(0.5) << "/"
              << s.metrics().latencyPercentile(0.9) << "/"
              << s.metrics().latencyPercentile(0.99) << "\n";
    if (s.metrics().latencyCapped())
        std::cout << "(latency histogram capped at "
                  << sim::Metrics::latencyCap()
                  << " cycles; tail percentiles are lower bounds)\n";
    if (health) {
        const auto &rep = monitor.report();
        const auto ss = monitor.steadyState().analyze();
        std::cout << "health: "
                  << (rep.healthy() ? "healthy" : "UNHEALTHY")
                  << " (" << rep.scans << " scans, "
                  << rep.deadlocks << " deadlocks, "
                  << rep.progressViolations
                  << " progress violations, max head stall "
                  << rep.maxHeadStall << ", last progress @"
                  << rep.lastProgressCycle << ")\n";
        if (ss.stable)
            std::cout << "steady state: truncated "
                      << ss.truncatedWindows << "/" << ss.windows
                      << " windows; throughput "
                      << ss.steadyThroughput << " (whole-run "
                      << ss.wholeThroughput << "), avg latency "
                      << ss.steadyAvgLatency << " (whole-run "
                      << ss.wholeAvgLatency << ")\n";
        else
            std::cout << "steady state: run too short ("
                      << ss.windows << " windows; need "
                      << obs::SteadyStateTracker::kMinWindows
                      << ")\n";
    }

    if (want_trace) {
        const obs::TraceMeta meta{n_size, s.topology().stages(),
                                  scheme};
        if (!trace_json.empty()) {
            auto os = openOut(trace_json);
            if (!os) {
                std::cerr << "sim: cannot open " << trace_json
                          << "\n";
                return 1;
            }
            obs::writeChromeTrace(os, sink, meta);
            std::cerr << "wrote " << trace_json << " ("
                      << sink.size() << " events, "
                      << sink.droppedOldest()
                      << " evicted by ring wrap)\n";
        }
        if (!trace_bin.empty()) {
            auto os = openOut(trace_bin);
            if (!os) {
                std::cerr << "sim: cannot open " << trace_bin
                          << "\n";
                return 1;
            }
            obs::writeBinaryTrace(os, sink, meta);
            std::cerr << "wrote " << trace_bin << " ("
                      << sink.size() << " events)\n";
        }
    }
    if (stats) {
        obs::StatsRegistry reg;
        s.metrics().exportStats(reg, cycles);
        if (const sim::RouteCache *rc = s.routeCache())
            rc->exportStats(reg);
        std::cout << reg.str();
    }
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const auto src = static_cast<Label>(std::atoi(args[0].c_str()));
    const auto dst = static_cast<Label>(std::atoi(args[1].c_str()));
    Label n_size = 16;
    auto scheme = obs::ReplayScheme::Tsdt;
    std::vector<std::string> fault_specs;
    std::string export_json, export_bin;
    for (std::size_t i = 2; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (i + 1 >= args.size()) {
            std::cerr << "trace: " << flag << " requires a value\n";
            return 2;
        }
        const std::string val = args[++i];
        if (flag == "--n") {
            n_size = static_cast<Label>(std::atoi(val.c_str()));
            if (!isPowerOfTwo(n_size) || n_size < 2) {
                std::cerr << "trace: N must be a power of two >= 2\n";
                return 2;
            }
        } else if (flag == "--scheme") {
            if (val == "ssdt")
                scheme = obs::ReplayScheme::Ssdt;
            else if (val == "tsdt")
                scheme = obs::ReplayScheme::Tsdt;
            else {
                std::cerr << "trace: scheme must be ssdt or tsdt\n";
                return 2;
            }
        } else if (flag == "--faults") {
            for (const auto &f : splitCommas(val))
                fault_specs.push_back(f);
        } else if (flag == "--export") {
            export_json = val;
        } else if (flag == "--export-bin") {
            export_bin = val;
        } else {
            std::cerr << "trace: unknown flag " << flag << "\n";
            return 2;
        }
    }
    if (src >= n_size || dst >= n_size) {
        std::cerr << "trace: src/dst must be < N (" << n_size
                  << "); pass --n for larger networks\n";
        return 2;
    }

    const topo::IadmTopology net(n_size);
    fault::FaultSet faults;
    for (const auto &spec : fault_specs) {
        topo::Link l{};
        if (!parseLink(net, spec, l)) {
            std::cerr << "trace: bad link spec: " << spec << "\n";
            return 2;
        }
        faults.blockLink(l);
        std::cout << "blocked: " << l.str() << "\n";
    }

    obs::TraceSink sink(std::size_t{1} << 12);
    const auto r =
        obs::replayRoute(net, faults, src, dst, scheme, &sink);
    std::cout << obs::printReplay(r);

    const obs::TraceMeta meta{n_size, net.stages(),
                              obs::replaySchemeName(scheme)};
    if (!export_json.empty()) {
        auto os = openOut(export_json);
        if (!os) {
            std::cerr << "trace: cannot open " << export_json << "\n";
            return 1;
        }
        obs::writeChromeTrace(os, sink, meta);
        std::cerr << "wrote " << export_json << "\n";
    }
    if (!export_bin.empty()) {
        auto os = openOut(export_bin);
        if (!os) {
            std::cerr << "trace: cannot open " << export_bin << "\n";
            return 1;
        }
        obs::writeBinaryTrace(os, sink, meta);
        std::cerr << "wrote " << export_bin << "\n";
    }
    return r.delivered ? 0 : 1;
}

int
cmdSnapshot(const std::string &path, std::uint64_t cycle)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "snapshot: cannot open " << path << "\n";
        return 1;
    }
    const auto trace = obs::readBinaryTrace(is);
    if (!trace) {
        std::cerr << "snapshot: " << path
                  << " is not an iadm binary trace\n";
        return 1;
    }
    std::cout << obs::printSnapshot(
        obs::queueSnapshot(*trace, cycle));
    return 0;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    sim::SweepGrid grid;
    grid.measureCycles = 1000;
    grid.warmupCycles = 200;
    unsigned workers = 1;
    unsigned sim_shards = 1;
    std::string out_path, trace_dir;
    bool timing = true;
    bool stats = false;
    bool health = false;

    const auto bad = [](const std::string &what,
                        const std::string &v) {
        std::cerr << "sweep: bad " << what << ": " << v << "\n";
        return 2;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--no-timing") {
            timing = false;
            continue;
        }
        if (flag == "--stats") {
            stats = true;
            continue;
        }
        if (flag == "--health") {
            health = true;
            continue;
        }
        if (i + 1 >= args.size()) {
            std::cerr << "sweep: " << flag
                      << " requires a value\n";
            return 2;
        }
        const std::string val = args[++i];
        if (flag == "--sizes") {
            grid.netSizes.clear();
            for (const auto &v : splitCommas(val)) {
                const auto n =
                    static_cast<Label>(std::atoi(v.c_str()));
                if (!isPowerOfTwo(n) || n < 2)
                    return bad("size", v);
                grid.netSizes.push_back(n);
            }
        } else if (flag == "--schemes") {
            grid.schemes.clear();
            for (const auto &v : splitCommas(val)) {
                const auto s = sim::parseRoutingScheme(v);
                if (!s)
                    return bad("scheme", v);
                grid.schemes.push_back(*s);
            }
        } else if (flag == "--rates") {
            grid.injectionRates.clear();
            for (const auto &v : splitCommas(val))
                grid.injectionRates.push_back(std::atof(v.c_str()));
        } else if (flag == "--caps") {
            grid.queueCapacities.clear();
            for (const auto &v : splitCommas(val)) {
                const auto c = std::atoi(v.c_str());
                if (c < 1)
                    return bad("queue capacity", v);
                grid.queueCapacities.push_back(
                    static_cast<std::size_t>(c));
            }
        } else if (flag == "--faults") {
            grid.faults.clear();
            for (const auto &v : splitCommas(val)) {
                const auto f = sim::FaultScenario::parse(v);
                if (!f)
                    return bad("fault scenario", v);
                grid.faults.push_back(*f);
            }
        } else if (flag == "--traffic" || flag == "--scenario") {
            // Same axis, two spellings: --scenario reads better for
            // composed specs.  Commas separate axis values, so
            // multi-node hotspot lists use '+' (dst:hotspot:0+5:0.3).
            grid.traffics.clear();
            for (const auto &v : splitCommas(val)) {
                const auto t = sim::TrafficSpec::parse(v);
                if (!t)
                    return bad("traffic spec", v);
                grid.traffics.push_back(*t);
            }
        } else if (flag == "--churn") {
            grid.churns.clear();
            for (const auto &v : splitCommas(val)) {
                const auto c = sim::ChurnSpec::parse(v);
                if (!c)
                    return bad("churn spec", v);
                grid.churns.push_back(*c);
            }
        } else if (flag == "--max-age") {
            grid.maxPacketAge =
                static_cast<sim::Cycle>(std::strtoull(
                    val.c_str(), nullptr, 10));
        } else if (flag == "--crossbar") {
            grid.crossbarModes.clear();
            for (const auto &v : splitCommas(val))
                grid.crossbarModes.push_back(v == "1" ||
                                             v == "true");
        } else if (flag == "--replicates") {
            grid.replicates =
                static_cast<unsigned>(std::atoi(val.c_str()));
            if (grid.replicates == 0)
                return bad("replicate count", val);
        } else if (flag == "--warmup") {
            grid.warmupCycles =
                static_cast<sim::Cycle>(std::atoll(val.c_str()));
        } else if (flag == "--cycles") {
            grid.measureCycles =
                static_cast<sim::Cycle>(std::atoll(val.c_str()));
        } else if (flag == "--seed") {
            grid.masterSeed =
                static_cast<std::uint64_t>(std::strtoull(
                    val.c_str(), nullptr, 10));
        } else if (flag == "--workers") {
            workers =
                static_cast<unsigned>(std::atoi(val.c_str()));
        } else if (flag == "--shards") {
            sim_shards =
                static_cast<unsigned>(std::atoi(val.c_str()));
        } else if (flag == "--out") {
            out_path = val;
        } else if (flag == "--trace-dir") {
            trace_dir = val;
        } else {
            std::cerr << "sweep: unknown flag " << flag << "\n";
            return 2;
        }
    }

    // N-dependent spec checks: every traffic axis value must be valid
    // at every swept size (hotspot node < N, transpose bits, ...).
    for (const auto &t : grid.traffics) {
        for (const Label n : grid.netSizes) {
            if (const auto err = t.validate(n)) {
                std::cerr << "sweep: invalid traffic spec '"
                          << t.name() << "': " << *err << "\n";
                return 2;
            }
        }
    }

    const bool progress = !out_path.empty();
    sim::SweepOptions opts;
    opts.workers = workers;
    opts.simShards = sim_shards;
    if (health) {
        if (!obs::healthCompiledIn())
            IADM_WARN("this build compiled without IADM_HEALTH; "
                      "--health sections will report nothing");
        opts.health = true;
    }
    if (!trace_dir.empty()) {
        if (!obs::traceCompiledIn())
            IADM_WARN("this build compiled without IADM_TRACE; "
                      "--trace-dir will write empty traces");
        std::filesystem::create_directories(trace_dir);
        opts.traceCapacity = obs::TraceSink::kDefaultCapacity;
        opts.onReplicateTrace =
            [&trace_dir](const sim::SweepCell &cell, unsigned rep,
                         const obs::TraceSink &sink,
                         const sim::NetworkSim &s) {
                // Per-replicate file names are unique, so worker
                // threads never contend.
                const auto path =
                    std::filesystem::path(trace_dir) /
                    ("cell" + std::to_string(cell.cellIndex) +
                     "_rep" + std::to_string(rep) + ".json");
                std::ofstream os(path, std::ios::binary);
                if (!os)
                    return;
                const obs::TraceMeta meta{
                    cell.netSize, s.topology().stages(),
                    sim::routingSchemeName(cell.scheme)};
                obs::writeChromeTrace(os, sink, meta);
            };
    }
    if (progress) {
        opts.onCellDone = [](const sim::CellResult &r,
                             std::size_t done, std::size_t total) {
            std::cerr << "[" << done << "/" << total << "] N="
                      << r.cell.netSize << " "
                      << sim::routingSchemeName(r.cell.scheme)
                      << " rate=" << r.cell.injectionRate
                      << " faults=" << r.cell.fault.name();
            if (r.cell.churn.kind != sim::ChurnSpec::Kind::None)
                std::cerr << " churn=" << r.cell.churn.name();
            std::cerr << "\n";
        };
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = sim::runSweep(grid, opts);
    const auto t1 = std::chrono::steady_clock::now();

    sim::ReportOptions ropts;
    ropts.includeWallClock = timing;
    ropts.elapsedMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ropts.includeStats = stats;

    if (out_path.empty()) {
        sim::writeSweepReport(std::cout, grid, results, ropts);
    } else {
        const auto parent =
            std::filesystem::path(out_path).parent_path();
        if (!parent.empty())
            std::filesystem::create_directories(parent);
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "sweep: cannot open " << out_path << "\n";
            return 1;
        }
        sim::writeSweepReport(os, grid, results, ropts);
        std::cerr << "wrote " << out_path << " ("
                  << results.size() << " cells x "
                  << grid.replicates << " replicates, "
                  << ropts.elapsedMs << " ms)\n";
    }
    return 0;
}

int
cmdServe(const std::vector<std::string> &args)
{
    serve::ServeConfig cfg;
    std::string socket_path, fault_spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--no-batch") {
            cfg.batching = false;
            continue;
        }
        if (i + 1 >= args.size()) {
            std::cerr << "serve: " << flag << " requires a value\n";
            return 2;
        }
        const std::string val = args[++i];
        if (flag == "--net") {
            cfg.netSize = static_cast<Label>(std::atoi(val.c_str()));
            if (!isPowerOfTwo(cfg.netSize) || cfg.netSize < 2) {
                std::cerr << "serve: N must be a power of two"
                             " >= 2\n";
                return 2;
            }
        } else if (flag == "--scheme") {
            const auto s = sim::parseRoutingScheme(val);
            if (!s) {
                std::cerr << "serve: unknown scheme " << val << "\n";
                return 2;
            }
            cfg.scheme = *s;
        } else if (flag == "--socket") {
            socket_path = val;
        } else if (flag == "--faults") {
            fault_spec = val;
        } else if (flag == "--churn") {
            const auto c = sim::ChurnSpec::parse(val);
            if (!c) {
                std::cerr << "serve: bad churn spec: " << val
                          << "\n";
                return 2;
            }
            cfg.churn = *c;
        } else if (flag == "--cache-capacity") {
            cfg.cacheCapacity = static_cast<std::size_t>(
                std::strtoull(val.c_str(), nullptr, 10));
        } else if (flag == "--tick-us") {
            cfg.tickUs =
                static_cast<unsigned>(std::atoi(val.c_str()));
        } else if (flag == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(
                std::strtoull(val.c_str(), nullptr, 10));
        } else {
            std::cerr << "serve: unknown flag " << flag << "\n";
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::cerr << "serve: --socket PATH is required\n";
        return 2;
    }

    const topo::IadmTopology net(cfg.netSize);
    fault::FaultSet faults;
    std::string err;
    if (!serve::ServerCore::parseFaultArg(net, fault_spec, cfg.seed,
                                          faults, err)) {
        std::cerr << "serve: " << err << "\n";
        return 2;
    }

    serve::ServerCore core(cfg, std::move(faults));
    serve::RouteServer server(core, socket_path);
    if (!server.start(&err)) {
        std::cerr << "serve: " << err << "\n";
        return 1;
    }
    std::cerr << "iadm_tool serve: N=" << cfg.netSize << " scheme="
              << sim::routingSchemeName(cfg.scheme) << " listening on "
              << socket_path
              << (cfg.batching ? " (batched)" : " (unbatched)")
              << "\n";
    serve::ChurnTicker ticker(core);
    serve::HealthWatchdog watchdog(core);
    server.run();
    const auto st = core.statsSnapshot();
    std::cerr << "iadm_tool serve: served " << st.requests
              << " request(s) in " << st.batches
              << " batch(es), max batch " << st.maxBatch
              << ", epoch " << core.epoch() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "-V")
        return printVersion();
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage(std::cout);
        return 0;
    }
    if (cmd == "sweep")
        return cmdSweep(
            std::vector<std::string>(argv + 2, argv + argc));
    if (cmd == "serve")
        return cmdServe(
            std::vector<std::string>(argv + 2, argv + argc));
    // trace/snapshot take non-N positionals (src / file path), so
    // dispatch them before the power-of-two check below.
    if (cmd == "trace") {
        if (argc < 3)
            return missingArg("trace", "src",
                              "trace <src> <dst> [--n N] ...");
        if (argc < 4)
            return missingArg("trace", "dst",
                              "trace <src> <dst> [--n N] ...");
        return cmdTrace(
            std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "snapshot") {
        if (argc < 3)
            return missingArg("snapshot", "trace.bin",
                              "snapshot <trace.bin> <cycle>");
        if (argc < 4)
            return missingArg("snapshot", "cycle",
                              "snapshot <trace.bin> <cycle>");
        return cmdSnapshot(argv[2], static_cast<std::uint64_t>(
                                        std::atoll(argv[3])));
    }

    const bool known_n_cmd = cmd == "diagram" || cmd == "route" ||
                             cmd == "paths" || cmd == "census" ||
                             cmd == "perm" || cmd == "sim";
    if (!known_n_cmd) {
        std::cerr << "iadm_tool: unknown command '" << cmd
                  << "' (run 'iadm_tool --help' for usage)\n";
        return 2;
    }
    if (argc < 3)
        return missingArg(cmd.c_str(), "N",
                          (cmd + " <N> ...").c_str());
    const auto n_size = static_cast<Label>(std::atoi(argv[2]));
    if (!isPowerOfTwo(n_size) || n_size < 2) {
        std::cerr << "N must be a power of two >= 2\n";
        return 2;
    }
    if (cmd == "diagram")
        return cmdDiagram(n_size);
    if (cmd == "route" || cmd == "paths") {
        const char *synopsis =
            cmd == "route"
                ? "route <N> <src> <dst> [stage:from:kind...]"
                  " [--repeat K]"
                : "paths <N> <src> <dst>";
        if (argc < 4)
            return missingArg(cmd.c_str(), "src", synopsis);
        if (argc < 5)
            return missingArg(cmd.c_str(), "dst", synopsis);
        const auto src = static_cast<Label>(std::atoi(argv[3]));
        const auto dst = static_cast<Label>(std::atoi(argv[4]));
        if (cmd == "paths")
            return cmdPaths(n_size, src, dst);
        std::vector<std::string> specs(argv + 5, argv + argc);
        return cmdRoute(n_size, src, dst, specs);
    }
    if (cmd == "census")
        return cmdCensus(n_size);
    if (cmd == "perm") {
        if (argc < 4)
            return missingArg("perm", "spec", "perm <N> <spec>");
        return cmdPerm(n_size, argv[3]);
    }
    // sim
    const char *sim_synopsis =
        "sim <N> <scheme> <rate> <cycles> [flags...]";
    if (argc < 4)
        return missingArg("sim", "scheme", sim_synopsis);
    if (argc < 5)
        return missingArg("sim", "rate", sim_synopsis);
    if (argc < 6)
        return missingArg("sim", "cycles", sim_synopsis);
    return cmdSim(n_size, argv[3], std::atof(argv[4]),
                  static_cast<sim::Cycle>(std::atoll(argv[5])),
                  std::vector<std::string>(argv + 6, argv + argc));
}
